//! DRAM device configuration: timing parameters, geometry and address
//! mapping, with presets for on-package HBM and off-package DDR4.

use nomad_types::Pow2;
use serde::{Deserialize, Serialize};

/// DRAM command timing parameters, all in **device clock cycles**.
///
/// The subset modeled is the one that matters for bandwidth and
/// row-buffer behaviour at 64-byte burst granularity; per-DIMM details
/// (ODT, rank-to-rank turnaround, …) are out of scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingParams {
    /// ACT → CAS delay.
    pub t_rcd: u64,
    /// CAS read latency.
    pub t_cl: u64,
    /// CAS write latency.
    pub t_cwl: u64,
    /// PRE → ACT delay.
    pub t_rp: u64,
    /// ACT → PRE minimum row-open time.
    pub t_ras: u64,
    /// Data-bus occupancy of one 64-byte burst.
    pub t_burst: u64,
    /// CAS → CAS same-bank delay.
    pub t_ccd: u64,
    /// Read → PRE delay.
    pub t_rtp: u64,
    /// Write recovery (end of write burst → PRE).
    pub t_wr: u64,
    /// ACT → ACT different-bank delay.
    pub t_rrd: u64,
    /// Four-activate window.
    pub t_faw: u64,
    /// Average refresh interval.
    pub t_refi: u64,
    /// Refresh cycle time (channel blocked).
    pub t_rfc: u64,
    /// Data-bus occupancy of a tag-only probe (TDRAM-style on-die tag
    /// check): the handful of tag/metadata beats returned on the bus
    /// instead of a full 64-byte burst. Must be ≤ [`t_burst`](Self::t_burst).
    pub t_tag: u64,
}

/// Physical location of a block within a DRAM device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddrLoc {
    /// Channel index.
    pub channel: usize,
    /// Bank index within the channel.
    pub bank: usize,
    /// Row index within the bank.
    pub row: u64,
}

/// Block-interleaved address mapping.
///
/// Consecutive 64-byte blocks rotate across channels first (so a 4 KiB
/// page copy spreads over every channel), then fill a row's worth of
/// columns in one bank before moving to the next bank, then the next
/// row. This keeps sequential page traffic row-friendly — the property
/// the paper's fill traffic relies on — while random block traffic
/// spreads over banks.
#[derive(Debug, Clone, Copy)]
pub struct AddrMap {
    channels: usize,
    banks: usize,
    blocks_per_row: u64,
    /// Shift-and-mask decode, present when every dimension is a power
    /// of two (both device presets are). Redundant with the fields
    /// above, so it is excluded from serialization and `PartialEq`;
    /// deserializing rebuilds it.
    fast: Option<FastDecode>,
}

impl Serialize for AddrMap {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("channels".to_string(), self.channels.to_value()),
            ("banks".to_string(), self.banks.to_value()),
            ("blocks_per_row".to_string(), self.blocks_per_row.to_value()),
        ])
    }
}

impl Deserialize for AddrMap {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let channels: usize = serde::de_field(v, "channels")?;
        let banks: usize = serde::de_field(v, "banks")?;
        let blocks_per_row: u64 = serde::de_field(v, "blocks_per_row")?;
        Ok(AddrMap::new(channels, banks, blocks_per_row * 64))
    }
}

/// Precomputed shift/mask geometry for power-of-two address maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FastDecode {
    channels: Pow2,
    banks: Pow2,
    blocks_per_row: Pow2,
}

impl PartialEq for AddrMap {
    fn eq(&self, other: &Self) -> bool {
        self.channels == other.channels
            && self.banks == other.banks
            && self.blocks_per_row == other.blocks_per_row
    }
}

impl Eq for AddrMap {}

impl AddrMap {
    /// Build a mapping for `channels`×`banks` geometry with
    /// `row_bytes`-sized row buffers.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero or `row_bytes < 64`.
    pub fn new(channels: usize, banks: usize, row_bytes: u64) -> Self {
        assert!(channels > 0 && banks > 0, "geometry must be non-zero");
        assert!(row_bytes >= 64, "row must hold at least one block");
        let blocks_per_row = row_bytes / 64;
        let fast = match (
            Pow2::new(channels as u64),
            Pow2::new(banks as u64),
            Pow2::new(blocks_per_row),
        ) {
            (Some(channels), Some(banks), Some(blocks_per_row)) => Some(FastDecode {
                channels,
                banks,
                blocks_per_row,
            }),
            _ => None,
        };
        AddrMap {
            channels,
            banks,
            blocks_per_row,
            fast,
        }
    }

    /// Decode a byte address into channel/bank/row.
    #[inline]
    pub fn decode(&self, addr: u64) -> AddrLoc {
        let block = addr >> 6;
        if let Some(f) = self.fast {
            let channel = f.channels.rem(block) as usize;
            let row_major = f.blocks_per_row.div(f.channels.div(block));
            let bank = f.banks.rem(row_major) as usize;
            let row = f.banks.div(row_major);
            return AddrLoc { channel, bank, row };
        }
        let channel = (block % self.channels as u64) as usize;
        let in_channel = block / self.channels as u64;
        let row_major = in_channel / self.blocks_per_row;
        let bank = (row_major % self.banks as u64) as usize;
        let row = row_major / self.banks as u64;
        AddrLoc { channel, bank, row }
    }
}

/// Full configuration of one DRAM device (one HBM stack or one DDR4
/// memory system).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Human-readable device name.
    pub name: String,
    /// Number of independent channels.
    pub channels: usize,
    /// Banks per channel.
    pub banks_per_channel: usize,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// Per-channel command-queue depth.
    pub queue_depth: usize,
    /// Command timing in device cycles.
    pub timing: TimingParams,
    /// CPU cycles per device cycle, as a rational `num/den`
    /// (e.g. 16/5 = 3.2 CPU cycles per device cycle for a 1 GHz device
    /// under a 3.2 GHz CPU).
    pub cpu_per_dev_num: u64,
    /// Denominator of the clock ratio.
    pub cpu_per_dev_den: u64,
    /// Device clock in GHz (for bandwidth reporting only).
    pub device_clock_ghz: f64,
}

impl DramConfig {
    /// On-package HBM preset: 4 channels × 16 banks, 2 KiB rows,
    /// 1 GHz device clock, 64 B per 2-cycle burst → 128 GB/s peak.
    ///
    /// This stands in for the paper's JEDEC HBM on-package DRAM: ~5× the
    /// off-package bandwidth, matching the on/off-package ratio the
    /// paper's classification (Table I) presumes.
    pub fn hbm() -> Self {
        DramConfig {
            name: "HBM".to_string(),
            channels: 4,
            banks_per_channel: 16,
            row_bytes: 2048,
            queue_depth: 64,
            timing: TimingParams {
                t_rcd: 14,
                t_cl: 14,
                t_cwl: 7,
                t_rp: 14,
                t_ras: 34,
                t_burst: 2,
                t_ccd: 2,
                t_rtp: 5,
                t_wr: 16,
                t_rrd: 4,
                t_faw: 16,
                t_refi: 3900,
                t_rfc: 260,
                t_tag: 1,
            },
            // 3.2 GHz CPU / 1.0 GHz device = 16/5 CPU cycles per device cycle.
            cpu_per_dev_num: 16,
            cpu_per_dev_den: 5,
            device_clock_ghz: 1.0,
        }
    }

    /// Off-package DDR4 preset: one channel of DDR4-3200 × 16 banks,
    /// 8 KiB rows, 64 B per 4-cycle burst → 25.6 GB/s peak.
    ///
    /// 25.6 GB/s is the "available off-package bandwidth" implied by the
    /// paper's RMHB classes: *Tight* workloads (23–27 GB/s) consume
    /// nearly all of it, *Excess* workloads exceed it. A single channel
    /// (vs. the HBM's four) concentrates queueing the way a commodity
    /// off-package memory system does.
    pub fn ddr4_2ch() -> Self {
        DramConfig {
            name: "DDR4".to_string(),
            channels: 1,
            banks_per_channel: 16,
            row_bytes: 8192,
            queue_depth: 64,
            timing: TimingParams {
                t_rcd: 22,
                t_cl: 22,
                t_cwl: 16,
                t_rp: 22,
                t_ras: 52,
                t_burst: 4,
                t_ccd: 6,
                t_rtp: 12,
                t_wr: 24,
                t_rrd: 8,
                t_faw: 34,
                t_refi: 12480,
                t_rfc: 560,
                t_tag: 1,
            },
            // 3.2 GHz CPU / 1.6 GHz device = 2 CPU cycles per device cycle.
            cpu_per_dev_num: 2,
            cpu_per_dev_den: 1,
            device_clock_ghz: 1.6,
        }
    }

    /// Address mapping derived from the geometry.
    pub fn addr_map(&self) -> AddrMap {
        AddrMap::new(self.channels, self.banks_per_channel, self.row_bytes)
    }

    /// Theoretical peak data bandwidth in GB/s: one 64-byte burst per
    /// `t_burst` device cycles per channel.
    pub fn peak_gbps(&self) -> f64 {
        self.channels as f64 * 64.0 * self.device_clock_ghz / self.timing.t_burst as f64
    }

    /// Idle (unloaded) read latency in device cycles: ACT + CAS + burst.
    pub fn idle_read_latency_dev(&self) -> u64 {
        self.timing.t_rcd + self.timing.t_cl + self.timing.t_burst
    }

    /// Convert device cycles to CPU cycles (rounded up).
    pub fn dev_to_cpu(&self, dev_cycles: u64) -> u64 {
        (dev_cycles * self.cpu_per_dev_num).div_ceil(self.cpu_per_dev_den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hbm_peak_bandwidth() {
        let c = DramConfig::hbm();
        assert!((c.peak_gbps() - 128.0).abs() < 1e-9);
    }

    #[test]
    fn ddr4_peak_bandwidth() {
        let c = DramConfig::ddr4_2ch();
        assert!((c.peak_gbps() - 25.6).abs() < 1e-9);
    }

    #[test]
    fn on_to_off_package_ratio_is_five() {
        let ratio = DramConfig::hbm().peak_gbps() / DramConfig::ddr4_2ch().peak_gbps();
        assert!((ratio - 5.0).abs() < 1e-9);
    }

    #[test]
    fn addr_map_interleaves_blocks_across_channels() {
        let m = AddrMap::new(4, 16, 2048);
        for blk in 0..8u64 {
            assert_eq!(m.decode(blk * 64).channel, (blk % 4) as usize);
        }
    }

    #[test]
    fn addr_map_page_fills_one_row_per_channel() {
        // A 4 KiB page = 64 blocks over 4 channels = 16 blocks per
        // channel; with 2 KiB rows (32 blocks) they all land in one row.
        let m = AddrMap::new(4, 16, 2048);
        for ch in 0..4 {
            let rows: std::collections::HashSet<_> = (0..64u64)
                .map(|b| m.decode(b * 64))
                .filter(|l| l.channel == ch)
                .map(|l| (l.bank, l.row))
                .collect();
            assert_eq!(rows.len(), 1, "page should stay in one row per channel");
        }
    }

    #[test]
    fn dev_to_cpu_rounds_up() {
        let c = DramConfig::hbm(); // 16/5
        assert_eq!(c.dev_to_cpu(5), 16);
        assert_eq!(c.dev_to_cpu(1), 4); // ceil(16/5) = 4
    }

    #[test]
    #[should_panic(expected = "geometry")]
    fn zero_channels_rejected() {
        let _ = AddrMap::new(0, 16, 2048);
    }

    proptest! {
        #[test]
        fn prop_decode_within_bounds(addr in 0u64..(1 << 40)) {
            let m = AddrMap::new(4, 16, 2048);
            let loc = m.decode(addr);
            prop_assert!(loc.channel < 4);
            prop_assert!(loc.bank < 16);
        }

        #[test]
        fn prop_same_block_same_loc(addr in 0u64..(1 << 40), off in 0u64..64) {
            let m = AddrMap::new(2, 16, 8192);
            let base = addr & !63;
            prop_assert_eq!(m.decode(base), m.decode(base + off));
        }

        /// Shift-and-mask decode agrees with the generic div/mod path
        /// on every power-of-two geometry.
        #[test]
        fn prop_fast_decode_matches_slow(
            addr in 0u64..(1 << 40),
            ch_shift in 0u32..3,
            bank_shift in 2u32..6,
            row_shift in 7u32..14,
        ) {
            let fast = AddrMap::new(1 << ch_shift, 1 << bank_shift, 1 << row_shift);
            prop_assert!(fast.fast.is_some());
            let mut slow = fast;
            slow.fast = None;
            prop_assert_eq!(fast.decode(addr), slow.decode(addr));
        }
    }
}
