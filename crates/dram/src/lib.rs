//! Cycle-level DRAM timing model for the NOMAD simulator.
//!
//! This crate plays the role DRAMsim3 played in the paper's evaluation:
//! it models the on-package HBM and off-package DDR4 devices at the
//! level of banks, rows and command timing, so that the first-order
//! effects the paper's argument rests on emerge naturally:
//!
//! * **bandwidth contention** — demand, metadata, fill and writeback
//!   traffic all compete for the same data buses, so a HW-based scheme's
//!   metadata accesses visibly stretch the effective DRAM-cache access
//!   time (Fig. 1a / Fig. 10 of the paper);
//! * **row-buffer locality** — page-granular fills are sequential and
//!   row-friendly, while low-spatial-locality demand streams are not
//!   (row-hit rates in Fig. 10).
//!
//! The model implements per-channel FR-FCFS scheduling over banks with
//! open-page row-buffer policy, ACT/PRE/CAS timing (tRCD, tCL/tCWL,
//! tRP, tRAS, tRTP, tWR, tCCD, tRRD, tFAW), data-bus occupancy
//! (tBURST) and periodic refresh (tREFI/tRFC). Devices run in their own
//! clock domain and are ticked from the CPU clock through a rational
//! clock divider, so completions are reported in CPU cycles.
//!
//! # Example
//!
//! ```
//! use nomad_dram::{Dram, DramConfig, DramRequest, Probe};
//! use nomad_types::{AccessKind, ReqId, TrafficClass};
//!
//! let mut dram = Dram::new(DramConfig::ddr4_2ch());
//! dram.try_push(DramRequest {
//!     token: ReqId(1),
//!     addr: 0x4000,
//!     kind: AccessKind::Read,
//!     class: TrafficClass::DemandRead,
//!     wants_completion: true,
//!     probe: Probe::Data,
//! })
//! .unwrap();
//! let mut done = Vec::new();
//! for _ in 0..500 {
//!     dram.tick(&mut done);
//! }
//! assert_eq!(done.len(), 1);
//! assert_eq!(done[0].token, ReqId(1));
//! ```

mod bank;
mod channel;
mod config;
mod device;
mod stats;

pub use config::{AddrLoc, AddrMap, DramConfig, TimingParams};
pub use device::{Dram, DramCompletion, DramRequest, Probe};
pub use stats::{ClassBytes, DramStats};
