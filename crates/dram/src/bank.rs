//! Flat bank state: struct-of-arrays open-row tracking and per-bank
//! command timing for one channel's banks.
//!
//! The per-bank state machine used to live in a `Vec<Bank>` of small
//! structs. The scheduler in [`crate::channel`] touches this state every
//! device cycle, so it is flattened here into parallel arrays plus an
//! incrementally maintained *row-open bit-mask*: bit `b` of
//! [`BankFile::open_mask`] is set exactly when bank `b` has an open row.
//! That lets the FR-FCFS passes prune whole banks with one AND instead
//! of chasing `Option<u64>` per entry, while each per-bank method keeps
//! the exact semantics of the old `Bank` struct.

use crate::config::TimingParams;

/// State of one channel's banks in struct-of-arrays form: the open row,
/// and the earliest device cycles at which the next ACT/CAS/PRE commands
/// may issue, per bank.
#[derive(Debug, Clone)]
pub(crate) struct BankFile {
    /// Open row per bank; meaningful only where the matching bit of
    /// `open` is set.
    open_row: Vec<u64>,
    /// Earliest cycle an ACT may issue, per bank.
    act_at: Vec<u64>,
    /// Earliest cycle a CAS (read/write) may issue, per bank.
    cas_at: Vec<u64>,
    /// Earliest cycle a PRE may issue, per bank.
    pre_at: Vec<u64>,
    /// Bit `b` set when bank `b` has an open row.
    open: u64,
}

impl BankFile {
    /// A file of `banks` closed banks with no timing obligations.
    pub fn new(banks: usize) -> Self {
        // The scheduler's occupancy and row-open masks are single u64
        // words; one channel never has more than 64 banks in practice
        // (both presets use 16).
        assert!(
            banks > 0 && banks <= 64,
            "a channel holds between 1 and 64 banks"
        );
        BankFile {
            open_row: vec![0; banks],
            act_at: vec![0; banks],
            cas_at: vec![0; banks],
            pre_at: vec![0; banks],
            open: 0,
        }
    }

    /// Number of banks in the file.
    pub fn len(&self) -> usize {
        self.open_row.len()
    }

    /// Bit-mask of banks with an open row.
    #[cfg(test)]
    pub fn open_mask(&self) -> u64 {
        self.open
    }

    /// Currently open row of bank `b`.
    #[inline]
    pub fn open_row(&self, b: usize) -> Option<u64> {
        if self.open & (1u64 << b) != 0 {
            Some(self.open_row[b])
        } else {
            None
        }
    }

    /// Whether a CAS to `row` on bank `b` can issue at `now` without
    /// ACT/PRE.
    #[inline]
    pub fn can_cas(&self, b: usize, row: u64, now: u64) -> bool {
        self.open_row(b) == Some(row) && now >= self.cas_at[b]
    }

    /// Whether an ACT on bank `b` can issue at `now` (bank-local
    /// constraints only; tRRD/tFAW are channel-level).
    #[inline]
    pub fn can_act(&self, b: usize, now: u64) -> bool {
        self.open & (1u64 << b) == 0 && now >= self.act_at[b]
    }

    /// Whether a PRE on bank `b` can issue at `now`.
    #[inline]
    pub fn can_pre(&self, b: usize, now: u64) -> bool {
        self.open & (1u64 << b) != 0 && now >= self.pre_at[b]
    }

    /// Bit-mask of banks whose open row could accept a CAS at `now`
    /// (open and past the bank's CAS timing; the row match is per
    /// command).
    #[inline]
    pub fn cas_ready_mask(&self, now: u64) -> u64 {
        let mut m = self.open;
        let mut ready = 0u64;
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            if now >= self.cas_at[b] {
                ready |= 1u64 << b;
            }
            m &= m - 1;
        }
        ready
    }

    /// Earliest device cycle a CAS may issue on bank `b` (bank-local
    /// timing only; the open-row and bus constraints are the
    /// scheduler's).
    #[inline]
    pub fn cas_ready_at(&self, b: usize) -> u64 {
        self.cas_at[b]
    }

    /// Earliest device cycle an ACT may issue on bank `b` (bank-local
    /// timing only; tRRD/tFAW are channel-level).
    #[inline]
    pub fn act_ready_at(&self, b: usize) -> u64 {
        self.act_at[b]
    }

    /// Earliest device cycle a PRE may issue on bank `b`.
    #[inline]
    pub fn pre_ready_at(&self, b: usize) -> u64 {
        self.pre_at[b]
    }

    /// Issue an ACT for `row` on bank `b` at `now`.
    pub fn act(&mut self, b: usize, row: u64, now: u64, t: &TimingParams) {
        debug_assert!(self.can_act(b, now));
        self.open |= 1u64 << b;
        self.open_row[b] = row;
        self.cas_at[b] = now + t.t_rcd;
        self.pre_at[b] = now + t.t_ras;
    }

    /// Issue a read CAS on bank `b` at `now`.
    pub fn read(&mut self, b: usize, now: u64, t: &TimingParams) {
        debug_assert!(now >= self.cas_at[b] && self.open & (1u64 << b) != 0);
        self.cas_at[b] = now + t.t_ccd;
        self.pre_at[b] = self.pre_at[b].max(now + t.t_rtp);
    }

    /// Issue a write CAS on bank `b` at `now`.
    pub fn write(&mut self, b: usize, now: u64, t: &TimingParams) {
        debug_assert!(now >= self.cas_at[b] && self.open & (1u64 << b) != 0);
        self.cas_at[b] = now + t.t_ccd;
        // Write recovery starts at the end of the write data burst.
        self.pre_at[b] = self.pre_at[b].max(now + t.t_cwl + t.t_burst + t.t_wr);
    }

    /// Issue a PRE on bank `b` at `now`.
    pub fn pre(&mut self, b: usize, now: u64, t: &TimingParams) {
        debug_assert!(self.can_pre(b, now));
        self.open &= !(1u64 << b);
        self.act_at[b] = now + t.t_rp;
    }

    /// Force-close every row for refresh: all rows closed, next ACT/CAS
    /// no earlier than `ready_at`.
    pub fn refresh_close_all(&mut self, ready_at: u64) {
        self.open = 0;
        for at in &mut self.act_at {
            *at = (*at).max(ready_at);
        }
        for at in &mut self.cas_at {
            *at = (*at).max(ready_at);
        }
    }

    /// Return every bank to the just-constructed state (all rows
    /// closed, no timing obligations), retaining the arrays'
    /// allocations — the arena-reuse path between sweep cells.
    pub fn reset(&mut self) {
        self.open_row.fill(0);
        self.act_at.fill(0);
        self.cas_at.fill(0);
        self.pre_at.fill(0);
        self.open = 0;
    }

    /// Latest timing obligation across all banks that must drain before
    /// a refresh can start.
    pub fn max_busy_until(&self) -> u64 {
        let mut max = 0;
        for b in 0..self.len() {
            let busy = if self.open & (1u64 << b) != 0 {
                self.pre_at[b]
            } else {
                self.act_at[b]
            };
            max = max.max(busy);
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> TimingParams {
        crate::DramConfig::hbm().timing
    }

    #[test]
    fn act_then_cas_after_trcd() {
        let t = timing();
        let mut b = BankFile::new(1);
        assert!(b.can_act(0, 0));
        b.act(0, 5, 0, &t);
        assert!(!b.can_cas(0, 5, t.t_rcd - 1));
        assert!(b.can_cas(0, 5, t.t_rcd));
        assert!(!b.can_cas(0, 6, t.t_rcd), "different row must not CAS");
    }

    #[test]
    fn pre_respects_tras() {
        let t = timing();
        let mut b = BankFile::new(1);
        b.act(0, 1, 0, &t);
        assert!(!b.can_pre(0, t.t_ras - 1));
        assert!(b.can_pre(0, t.t_ras));
        b.pre(0, t.t_ras, &t);
        assert!(b.open_row(0).is_none());
        assert!(!b.can_act(0, t.t_ras + t.t_rp - 1));
        assert!(b.can_act(0, t.t_ras + t.t_rp));
    }

    #[test]
    fn write_extends_precharge_window() {
        let t = timing();
        let mut b = BankFile::new(1);
        b.act(0, 1, 0, &t);
        let now = t.t_rcd;
        b.write(0, now, &t);
        let write_done = now + t.t_cwl + t.t_burst + t.t_wr;
        assert!(!b.can_pre(0, write_done - 1));
        assert!(b.can_pre(0, write_done.max(t.t_ras)));
    }

    #[test]
    fn back_to_back_cas_respects_tccd() {
        let t = timing();
        let mut b = BankFile::new(1);
        b.act(0, 1, 0, &t);
        b.read(0, t.t_rcd, &t);
        assert!(!b.can_cas(0, 1, t.t_rcd + t.t_ccd - 1));
        assert!(b.can_cas(0, 1, t.t_rcd + t.t_ccd));
    }

    #[test]
    fn refresh_close_blocks_act() {
        let t = timing();
        let mut b = BankFile::new(1);
        b.act(0, 3, 0, &t);
        b.refresh_close_all(1000);
        assert!(b.open_row(0).is_none());
        assert!(!b.can_act(0, 999));
        assert!(b.can_act(0, 1000));
    }

    #[test]
    fn masks_track_bank_state() {
        let t = timing();
        let mut f = BankFile::new(4);
        assert_eq!(f.open_mask(), 0);
        f.act(1, 9, 0, &t);
        f.act(3, 2, t.t_rrd, &t);
        assert_eq!(f.open_mask(), 0b1010);
        // Bank 1 becomes CAS-ready at tRCD, bank 3 at tRRD + tRCD.
        assert_eq!(f.cas_ready_mask(t.t_rcd - 1), 0);
        assert_eq!(f.cas_ready_mask(t.t_rcd), 0b0010);
        assert_eq!(f.cas_ready_mask(t.t_rrd + t.t_rcd), 0b1010);
        f.pre(1, t.t_ras, &t);
        assert_eq!(f.open_mask(), 0b1000);
        f.refresh_close_all(5000);
        assert_eq!(f.open_mask(), 0);
        assert!(f.max_busy_until() >= 5000);
    }

    #[test]
    #[should_panic(expected = "between 1 and 64")]
    fn rejects_more_than_64_banks() {
        let _ = BankFile::new(65);
    }
}
