//! Bank state machine: open-row tracking and per-bank command timing.

use crate::config::TimingParams;

/// State of one DRAM bank, tracking the open row and the earliest device
/// cycles at which the next ACT/CAS/PRE commands may be issued.
#[derive(Debug, Clone, Default)]
pub(crate) struct Bank {
    /// Currently open row, if any.
    open_row: Option<u64>,
    /// Earliest cycle an ACT may issue.
    act_at: u64,
    /// Earliest cycle a CAS (read/write) may issue.
    cas_at: u64,
    /// Earliest cycle a PRE may issue.
    pre_at: u64,
}

impl Bank {
    /// Currently open row.
    #[inline]
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Whether a CAS to `row` can issue at `now` without ACT/PRE.
    #[inline]
    pub fn can_cas(&self, row: u64, now: u64) -> bool {
        self.open_row == Some(row) && now >= self.cas_at
    }

    /// Whether an ACT can issue at `now` (bank-local constraints only;
    /// tRRD/tFAW are channel-level).
    #[inline]
    pub fn can_act(&self, now: u64) -> bool {
        self.open_row.is_none() && now >= self.act_at
    }

    /// Whether a PRE can issue at `now`.
    #[inline]
    pub fn can_pre(&self, now: u64) -> bool {
        self.open_row.is_some() && now >= self.pre_at
    }

    /// Issue an ACT for `row` at `now`.
    pub fn act(&mut self, row: u64, now: u64, t: &TimingParams) {
        debug_assert!(self.can_act(now));
        self.open_row = Some(row);
        self.cas_at = now + t.t_rcd;
        self.pre_at = now + t.t_ras;
    }

    /// Issue a read CAS at `now`.
    pub fn read(&mut self, now: u64, t: &TimingParams) {
        debug_assert!(now >= self.cas_at && self.open_row.is_some());
        self.cas_at = now + t.t_ccd;
        self.pre_at = self.pre_at.max(now + t.t_rtp);
    }

    /// Issue a write CAS at `now`.
    pub fn write(&mut self, now: u64, t: &TimingParams) {
        debug_assert!(now >= self.cas_at && self.open_row.is_some());
        self.cas_at = now + t.t_ccd;
        // Write recovery starts at the end of the write data burst.
        self.pre_at = self.pre_at.max(now + t.t_cwl + t.t_burst + t.t_wr);
    }

    /// Issue a PRE at `now`.
    pub fn pre(&mut self, now: u64, t: &TimingParams) {
        debug_assert!(self.can_pre(now));
        self.open_row = None;
        self.act_at = now + t.t_rp;
    }

    /// Force-close the row for refresh: row closed, next ACT no earlier
    /// than `ready_at`.
    pub fn refresh_close(&mut self, ready_at: u64) {
        self.open_row = None;
        self.act_at = self.act_at.max(ready_at);
        self.cas_at = self.cas_at.max(ready_at);
    }

    /// Whether the bank has any outstanding timing obligation past `now`
    /// that must drain before a refresh can start.
    pub fn busy_until(&self) -> u64 {
        if self.open_row.is_some() {
            self.pre_at
        } else {
            self.act_at
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> TimingParams {
        crate::DramConfig::hbm().timing
    }

    #[test]
    fn act_then_cas_after_trcd() {
        let t = timing();
        let mut b = Bank::default();
        assert!(b.can_act(0));
        b.act(5, 0, &t);
        assert!(!b.can_cas(5, t.t_rcd - 1));
        assert!(b.can_cas(5, t.t_rcd));
        assert!(!b.can_cas(6, t.t_rcd), "different row must not CAS");
    }

    #[test]
    fn pre_respects_tras() {
        let t = timing();
        let mut b = Bank::default();
        b.act(1, 0, &t);
        assert!(!b.can_pre(t.t_ras - 1));
        assert!(b.can_pre(t.t_ras));
        b.pre(t.t_ras, &t);
        assert!(b.open_row().is_none());
        assert!(!b.can_act(t.t_ras + t.t_rp - 1));
        assert!(b.can_act(t.t_ras + t.t_rp));
    }

    #[test]
    fn write_extends_precharge_window() {
        let t = timing();
        let mut b = Bank::default();
        b.act(1, 0, &t);
        let now = t.t_rcd;
        b.write(now, &t);
        let write_done = now + t.t_cwl + t.t_burst + t.t_wr;
        assert!(!b.can_pre(write_done - 1));
        assert!(b.can_pre(write_done.max(t.t_ras)));
    }

    #[test]
    fn back_to_back_cas_respects_tccd() {
        let t = timing();
        let mut b = Bank::default();
        b.act(1, 0, &t);
        b.read(t.t_rcd, &t);
        assert!(!b.can_cas(1, t.t_rcd + t.t_ccd - 1));
        assert!(b.can_cas(1, t.t_rcd + t.t_ccd));
    }

    #[test]
    fn refresh_close_blocks_act() {
        let t = timing();
        let mut b = Bank::default();
        b.act(3, 0, &t);
        b.refresh_close(1000);
        assert!(b.open_row().is_none());
        assert!(!b.can_act(999));
        assert!(b.can_act(1000));
    }
}
