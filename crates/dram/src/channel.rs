//! One DRAM channel: command queue, FR-FCFS scheduler, data bus and
//! refresh.
//!
//! # Masked FR-FCFS
//!
//! The scheduler runs every device cycle, so both selection passes are
//! pruned with bit-masks over banks (at most 64 per channel, enforced by
//! [`BankFile`]):
//!
//! - `queued_mask` — bit `b` set while any queued command targets bank
//!   `b`; maintained incrementally by push/pop with a per-bank count.
//! - pass 1 intersects it with [`BankFile::cas_ready_mask`]: a command
//!   is only inspected when its bank is open and past its CAS timing,
//!   which is a necessary condition for `can_cas`.
//! - pass 2 tracks the classic `protected`/`attempted` sets as words
//!   and skips any command whose bank is already in either set; once
//!   `queued_mask & !(attempted | protected)` is empty no remaining
//!   command can issue and the scan stops. This is behaviour-preserving
//!   because the dense scan gates PRE on `!attempted && !protected` and
//!   ACT on `!attempted` (a bank with a closed row is never protected),
//!   and commands on attempted banks have no side effects.
//!
//! The pre-refactor dense scan is kept under `#[cfg(test)]` as
//! [`Channel::tick_device_oracle`] and a seeded differential test pins
//! the masked scheduler to it cycle by cycle.

use crate::bank::BankFile;
use crate::config::{DramConfig, TimingParams};
use crate::device::Probe;
use crate::stats::DramStats;
use nomad_types::{AccessKind, ReqId, TrafficClass};
use std::collections::VecDeque;

/// Error returned by [`Channel::try_push`] when the command queue is
/// full; the caller must retry later (backpressure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuePushError;

impl core::fmt::Display for QueuePushError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("channel command queue is full")
    }
}

impl std::error::Error for QueuePushError {}

#[derive(Debug, Clone)]
struct QueuedCmd {
    token: ReqId,
    bank: usize,
    row: u64,
    kind: AccessKind,
    class: TrafficClass,
    wants_completion: bool,
    /// CPU cycle at which the request was pushed (for latency stats).
    push_cpu: u64,
    /// Full data burst or tag-only probe (sets the burst length).
    probe: Probe,
    /// Whether this request had to activate its row (row miss) — set
    /// when the scheduler ACTs on its behalf.
    needed_act: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ChannelCompletion {
    pub token: ReqId,
    pub kind: AccessKind,
    pub class: TrafficClass,
    /// Device cycle at which the data transfer finishes.
    pub done_at: u64,
    pub wants_completion: bool,
    /// CPU cycle at which the request was pushed.
    pub push_cpu: u64,
    /// Full data burst or tag-only probe (sets the bytes transferred).
    pub probe: Probe,
    /// Whether the access hit an open row.
    pub row_hit: bool,
}

/// One independently scheduled DRAM channel.
#[derive(Debug)]
pub(crate) struct Channel {
    banks: BankFile,
    queue: VecDeque<QueuedCmd>,
    queue_depth: usize,
    /// Queued commands per bank, backing `queued_mask`.
    queued_count: Vec<u32>,
    /// Bit `b` set while `queued_count[b] > 0`.
    queued_mask: u64,
    /// Device cycle after which the data bus is free.
    bus_free_at: u64,
    /// Earliest device cycle the next ACT may issue (tRRD).
    next_act_ok: u64,
    /// Earliest device cycles implied by the four-activate window: the
    /// oldest entry is when a new ACT stops violating tFAW.
    act_window: [u64; 4],
    /// Next scheduled refresh start.
    next_refresh: u64,
    /// If refreshing, the device cycle the refresh completes.
    refresh_until: Option<u64>,
    timing: TimingParams,
    /// Memoized [`next_interesting_dev_cycle`](Self::next_interesting_dev_cycle)
    /// result (unclamped), or [`BOUND_DIRTY`]. Every candidate in the
    /// bound is an absolute device cycle derived from channel state, so
    /// the value stays valid until the state mutates — each mutation
    /// site re-arms the sentinel via [`touch`](Self::touch). `Cell`
    /// keeps the query `&self` for the read-only kernel scans.
    bound_cache: std::cell::Cell<u64>,
}

/// Sentinel for an invalidated [`Channel::bound_cache`]; real bounds
/// are device-cycle numbers and never reach `u64::MAX`.
const BOUND_DIRTY: u64 = u64::MAX;

impl Channel {
    pub fn new(cfg: &DramConfig) -> Self {
        Channel {
            banks: BankFile::new(cfg.banks_per_channel),
            queue: VecDeque::with_capacity(cfg.queue_depth),
            queue_depth: cfg.queue_depth,
            queued_count: vec![0; cfg.banks_per_channel],
            queued_mask: 0,
            bus_free_at: 0,
            next_act_ok: 0,
            act_window: [0; 4],
            next_refresh: cfg.timing.t_refi,
            refresh_until: None,
            timing: cfg.timing,
            bound_cache: std::cell::Cell::new(BOUND_DIRTY),
        }
    }

    /// Return the channel to its just-constructed state (empty queue,
    /// idle banks, first refresh at `t_refi`), keeping every
    /// allocation — the arena-reuse path between sweep cells.
    pub fn reset(&mut self) {
        self.banks.reset();
        self.queue.clear();
        self.queued_count.fill(0);
        self.queued_mask = 0;
        self.bus_free_at = 0;
        self.next_act_ok = 0;
        self.act_window = [0; 4];
        self.next_refresh = self.timing.t_refi;
        self.refresh_until = None;
        self.bound_cache.set(BOUND_DIRTY);
    }

    /// Invalidate the memoized issue bound; must be called by every
    /// mutation of state [`next_interesting_dev_cycle`](Self::next_interesting_dev_cycle)
    /// reads (queue, banks, bus, ACT gates, refresh schedule).
    #[inline]
    fn touch(&mut self) {
        self.bound_cache.set(BOUND_DIRTY);
    }

    /// Whether there is room for one more command.
    pub fn can_accept(&self) -> bool {
        self.queue.len() < self.queue_depth
    }

    /// Current queue occupancy.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Enqueue a decoded command.
    #[allow(clippy::too_many_arguments)]
    pub fn try_push(
        &mut self,
        token: ReqId,
        bank: usize,
        row: u64,
        kind: AccessKind,
        class: TrafficClass,
        wants_completion: bool,
        push_cpu: u64,
        probe: Probe,
    ) -> Result<(), QueuePushError> {
        if !self.can_accept() {
            return Err(QueuePushError);
        }
        self.queue.push_back(QueuedCmd {
            token,
            bank,
            row,
            kind,
            class,
            wants_completion,
            push_cpu,
            probe,
            needed_act: false,
        });
        self.queued_count[bank] += 1;
        self.queued_mask |= 1u64 << bank;
        self.touch();
        Ok(())
    }

    /// Remove the queued command at `i`, keeping the occupancy mask in
    /// sync.
    fn take_queued(&mut self, i: usize) -> QueuedCmd {
        let cmd = self.queue.remove(i).expect("index valid");
        self.queued_count[cmd.bank] -= 1;
        if self.queued_count[cmd.bank] == 0 {
            self.queued_mask &= !(1u64 << cmd.bank);
        }
        cmd
    }

    fn act_allowed(&self, now: u64) -> bool {
        now >= self.next_act_ok && now >= self.act_window[0]
    }

    fn note_act(&mut self, now: u64) {
        self.next_act_ok = now + self.timing.t_rrd;
        self.act_window.rotate_left(1);
        self.act_window[3] = now + self.timing.t_faw;
    }

    /// Handle the refresh machinery for this cycle. Returns `true` when
    /// the cycle is consumed (refresh in progress or just started) and
    /// no command may issue.
    #[inline]
    fn tick_refresh(&mut self, now: u64, stats: &mut DramStats) -> bool {
        if let Some(until) = self.refresh_until {
            if now < until {
                return true;
            }
            self.refresh_until = None;
            self.touch();
        }
        if now >= self.next_refresh {
            // Wait for all banks to become precharge-able, then refresh.
            let drain = self.banks.max_busy_until();
            if now >= drain && now >= self.bus_free_at {
                let until = now + self.timing.t_rfc;
                self.banks.refresh_close_all(until);
                self.refresh_until = Some(until);
                self.next_refresh += self.timing.t_refi;
                self.touch();
                stats.refreshes.inc();
                return true;
            }
        }
        false
    }

    /// Issue the row-hit CAS queued at `i` and record its completion.
    fn issue_cas(&mut self, i: usize, now: u64, out: &mut Vec<ChannelCompletion>) {
        let t = self.timing;
        self.touch();
        let cmd = self.take_queued(i);
        let data_start = match cmd.kind {
            AccessKind::Read => {
                self.banks.read(cmd.bank, now, &t);
                now + t.t_cl
            }
            AccessKind::Write => {
                self.banks.write(cmd.bank, now, &t);
                now + t.t_cwl
            }
        };
        // The probe sets the burst length: a tag-only probe moves
        // `t_tag` beats instead of a full `t_burst` data burst, so it
        // both finishes and frees the bus earlier.
        let beats = match cmd.probe {
            Probe::Data => t.t_burst,
            Probe::TagOnly => t.t_tag,
        };
        self.bus_free_at = data_start + beats;
        out.push(ChannelCompletion {
            token: cmd.token,
            kind: cmd.kind,
            class: cmd.class,
            done_at: data_start + beats,
            wants_completion: cmd.wants_completion,
            push_cpu: cmd.push_cpu,
            probe: cmd.probe,
            row_hit: !cmd.needed_act,
        });
    }

    /// Advance one device cycle: maybe start/finish a refresh, then try
    /// to issue at most one command (FR-FCFS: first ready row-hit CAS,
    /// else prepare the oldest request).
    pub fn tick_device(
        &mut self,
        now: u64,
        stats: &mut DramStats,
        out: &mut Vec<ChannelCompletion>,
    ) {
        if self.tick_refresh(now, stats) {
            return;
        }
        // With no refresh pending this cycle and nothing queued, the
        // scheduler has nothing to do.
        if self.queue.is_empty() {
            return;
        }

        // FR-FCFS pass 1: oldest CAS-ready row hit whose bus slot is
        // free. A command is only worth inspecting when its bank is in
        // `candidates` (open, past CAS timing, and actually queued).
        let t = self.timing;
        let candidates = self.banks.cas_ready_mask(now) & self.queued_mask;
        if candidates != 0 {
            let mut cas_idx = None;
            for (i, cmd) in self.queue.iter().enumerate() {
                if candidates & (1u64 << cmd.bank) == 0 {
                    continue;
                }
                if self.banks.can_cas(cmd.bank, cmd.row, now) {
                    let data_start = match cmd.kind {
                        AccessKind::Read => now + t.t_cl,
                        AccessKind::Write => now + t.t_cwl,
                    };
                    if data_start >= self.bus_free_at {
                        cas_idx = Some(i);
                        break;
                    }
                }
            }
            if let Some(i) = cas_idx {
                self.issue_cas(i, now, out);
                return;
            }
        }

        // FR-FCFS pass 2: prepare a bank for the oldest request that
        // can make progress. Scanning past blocked requests (instead of
        // stopping at the oldest) is what exposes bank-level
        // parallelism; banks whose open row an older request still
        // needs are protected from precharge (no row stealing). Each
        // bank is decided by its oldest queued command, so once every
        // queued bank is attempted or protected the scan stops.
        let act_ok = self.act_allowed(now);
        let mut protected: u64 = 0; // open rows older requests rely on
        let mut attempted: u64 = 0; // banks already considered
        for i in 0..self.queue.len() {
            let remaining = self.queued_mask & !(attempted | protected);
            if remaining == 0 {
                break;
            }
            let (bank_idx, row) = {
                let cmd = &self.queue[i];
                (cmd.bank, cmd.row)
            };
            let bit = 1u64 << bank_idx;
            if remaining & bit == 0 {
                continue;
            }
            match self.banks.open_row(bank_idx) {
                Some(open) if open == row => {
                    // Row already open; waiting on tCCD or the bus.
                    protected |= bit;
                }
                Some(_) => {
                    if self.banks.can_pre(bank_idx, now) {
                        self.banks.pre(bank_idx, now, &t);
                        self.touch();
                        return;
                    }
                    attempted |= bit;
                }
                None => {
                    if self.banks.can_act(bank_idx, now) && act_ok {
                        self.banks.act(bank_idx, row, now, &t);
                        self.queue[i].needed_act = true;
                        self.note_act(now);
                        self.touch();
                        return;
                    }
                    attempted |= bit;
                }
            }
        }
    }

    /// The pre-refactor dense FR-FCFS scan, kept verbatim as a parity
    /// oracle for [`tick_device`](Self::tick_device).
    #[cfg(test)]
    pub(crate) fn tick_device_oracle(
        &mut self,
        now: u64,
        stats: &mut DramStats,
        out: &mut Vec<ChannelCompletion>,
    ) {
        if self.tick_refresh(now, stats) {
            return;
        }

        // Pass 1: linear scan over every queued command.
        let t = self.timing;
        let mut cas_idx = None;
        for (i, cmd) in self.queue.iter().enumerate() {
            if self.banks.can_cas(cmd.bank, cmd.row, now) {
                let data_start = match cmd.kind {
                    AccessKind::Read => now + t.t_cl,
                    AccessKind::Write => now + t.t_cwl,
                };
                if data_start >= self.bus_free_at {
                    cas_idx = Some(i);
                    break;
                }
            }
        }
        if let Some(i) = cas_idx {
            self.issue_cas(i, now, out);
            return;
        }

        // Pass 2: full scan with per-command mask tests, no pruning.
        let act_ok = self.act_allowed(now);
        let mut protected: u64 = 0;
        let mut attempted: u64 = 0;
        for i in 0..self.queue.len() {
            let (bank_idx, row) = {
                let cmd = &self.queue[i];
                (cmd.bank, cmd.row)
            };
            let bit = 1u64 << (bank_idx & 63);
            match self.banks.open_row(bank_idx) {
                Some(open) if open == row => {
                    protected |= bit;
                }
                Some(_) => {
                    if attempted & bit == 0
                        && protected & bit == 0
                        && self.banks.can_pre(bank_idx, now)
                    {
                        self.banks.pre(bank_idx, now, &t);
                        self.touch();
                        return;
                    }
                    attempted |= bit;
                }
                None => {
                    if attempted & bit == 0 && self.banks.can_act(bank_idx, now) && act_ok {
                        self.banks.act(bank_idx, row, now, &t);
                        self.queue[i].needed_act = true;
                        self.note_act(now);
                        self.touch();
                        return;
                    }
                    attempted |= bit;
                }
            }
        }
    }

    /// Earliest device cycle strictly after `after` at which
    /// [`tick_device`](Self::tick_device) could change channel state:
    /// finish or start a refresh, or issue a CAS/PRE/ACT for a queued
    /// command. `None` while the queue is empty — refresh-only progress
    /// is replayable in bulk ([`replay_idle_refreshes`](Self::replay_idle_refreshes)),
    /// so an empty channel needs no wake-up of its own.
    ///
    /// The bound is *exact or early, never late*: it is the minimum
    /// over per-command issue candidates computed from the live
    /// [`BankFile`] timing words, ignoring only constraints that can
    /// delay an issue further (FR-FCFS protected/attempted sets, row
    /// mismatches). Landing early costs one no-op tick; landing late
    /// would break dense/event parity.
    pub fn next_interesting_dev_cycle(&self, after: u64) -> Option<u64> {
        if self.queue.is_empty() {
            return None;
        }
        // Mid-refresh the scheduler is frozen; nothing before `until`.
        if let Some(until) = self.refresh_until {
            return Some(until.max(after + 1));
        }
        let cached = self.bound_cache.get();
        if cached != BOUND_DIRTY {
            return Some(cached.max(after + 1));
        }
        // Refresh start: schedule, bank drain and bus must all allow it.
        // State is frozen inside a skip window, so the max is exact.
        let mut next = self
            .next_refresh
            .max(self.banks.max_busy_until())
            .max(self.bus_free_at);
        let t = self.timing;
        let act_gate = self.next_act_ok.max(self.act_window[0]);
        for cmd in &self.queue {
            if next <= after + 1 {
                break; // can't get earlier than the next cycle
            }
            let cand = match self.banks.open_row(cmd.bank) {
                Some(open) if open == cmd.row => {
                    // CAS: bank CAS timing plus the data-bus gate
                    // (data_start = now + tCL/tCWL must be ≥ bus_free_at).
                    let lead = match cmd.kind {
                        AccessKind::Read => t.t_cl,
                        AccessKind::Write => t.t_cwl,
                    };
                    self.banks
                        .cas_ready_at(cmd.bank)
                        .max(self.bus_free_at.saturating_sub(lead))
                }
                // Row conflict: the scheduler would PRE this bank.
                Some(_) => self.banks.pre_ready_at(cmd.bank),
                // Closed bank: ACT, gated by tRRD and the tFAW window.
                None => self.banks.act_ready_at(cmd.bank).max(act_gate),
            };
            next = next.min(cand);
        }
        // An early-exited scan may memoize a value below the true
        // minimum; re-reads then clamp to `after + 1` — an *early*
        // answer, which the kernel contract tolerates (one no-op
        // wake), never a late one.
        self.bound_cache.set(next);
        Some(next.max(after + 1))
    }

    /// Replay the refresh machinery over the idle device-cycle window
    /// `(from, to]` without ticking every cycle.
    ///
    /// Only valid while the command queue is empty: with no queued
    /// work, [`tick_device`](Self::tick_device) can do nothing except
    /// start and finish refreshes, whose schedule depends solely on
    /// channel-local state — so the window can be walked in
    /// O(#refreshes) jumps between "interesting" cycles instead of
    /// cycle by cycle. Produces bit-identical state and stats to dense
    /// ticking over the same window.
    pub fn replay_idle_refreshes(&mut self, from: u64, to: u64, stats: &mut DramStats) {
        debug_assert!(
            self.queue.is_empty(),
            "idle refresh replay with queued work"
        );
        let mut cur = from;
        loop {
            // Next device cycle at which a dense tick would do
            // anything: finish the in-progress refresh, or start one
            // once the schedule, bank drain, and bus all allow it.
            let next = match self.refresh_until {
                Some(until) => until.max(cur + 1),
                None => {
                    let drain = self.banks.max_busy_until();
                    self.next_refresh
                        .max(drain)
                        .max(self.bus_free_at)
                        .max(cur + 1)
                }
            };
            if next > to {
                return;
            }
            self.refresh_until = None;
            if next >= self.next_refresh {
                let drain = self.banks.max_busy_until();
                if next >= drain && next >= self.bus_free_at {
                    let until = next + self.timing.t_rfc;
                    self.banks.refresh_close_all(until);
                    self.refresh_until = Some(until);
                    self.next_refresh += self.timing.t_refi;
                    stats.refreshes.inc();
                }
            }
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> (Channel, DramConfig) {
        let cfg = DramConfig::hbm();
        (Channel::new(&cfg), cfg)
    }

    fn drain_until(
        ch: &mut Channel,
        stats: &mut DramStats,
        max_cycles: u64,
    ) -> Vec<ChannelCompletion> {
        let mut out = Vec::new();
        for now in 0..max_cycles {
            ch.tick_device(now, stats, &mut out);
        }
        out
    }

    #[test]
    fn single_read_completes_with_idle_latency() {
        let (mut ch, cfg) = channel();
        let mut stats = DramStats::new(&cfg);
        ch.try_push(
            ReqId(1),
            0,
            5,
            AccessKind::Read,
            TrafficClass::DemandRead,
            true,
            0,
            Probe::Data,
        )
        .unwrap();
        let done = drain_until(&mut ch, &mut stats, 200);
        assert_eq!(done.len(), 1);
        let t = cfg.timing;
        // ACT at 0, CAS at tRCD, data done at tRCD + tCL + tBURST.
        assert_eq!(done[0].done_at, t.t_rcd + t.t_cl + t.t_burst);
        assert!(!done[0].row_hit);
    }

    #[test]
    fn second_read_same_row_is_a_row_hit() {
        let (mut ch, cfg) = channel();
        let mut stats = DramStats::new(&cfg);
        for i in 0..2 {
            ch.try_push(
                ReqId(i),
                0,
                5,
                AccessKind::Read,
                TrafficClass::DemandRead,
                true,
                0,
                Probe::Data,
            )
            .unwrap();
        }
        let done = drain_until(&mut ch, &mut stats, 300);
        assert_eq!(done.len(), 2);
        assert!(!done[0].row_hit);
        assert!(done[1].row_hit);
        assert!(done[1].done_at > done[0].done_at);
    }

    #[test]
    fn row_conflict_requires_pre_act() {
        let (mut ch, cfg) = channel();
        let mut stats = DramStats::new(&cfg);
        ch.try_push(
            ReqId(1),
            0,
            5,
            AccessKind::Read,
            TrafficClass::DemandRead,
            true,
            0,
            Probe::Data,
        )
        .unwrap();
        ch.try_push(
            ReqId(2),
            0,
            9,
            AccessKind::Read,
            TrafficClass::DemandRead,
            true,
            0,
            Probe::Data,
        )
        .unwrap();
        let done = drain_until(&mut ch, &mut stats, 500);
        assert_eq!(done.len(), 2);
        let t = cfg.timing;
        // Second access must wait ≥ tRAS + tRP + tRCD + tCL after the first ACT.
        assert!(done[1].done_at >= t.t_ras + t.t_rp + t.t_rcd + t.t_cl);
        assert!(!done[1].row_hit);
    }

    #[test]
    fn queue_backpressure() {
        let (mut ch, cfg) = channel();
        for i in 0..cfg.queue_depth as u64 {
            ch.try_push(
                ReqId(i),
                0,
                0,
                AccessKind::Read,
                TrafficClass::DemandRead,
                true,
                0,
                Probe::Data,
            )
            .unwrap();
        }
        assert!(!ch.can_accept());
        assert_eq!(
            ch.try_push(
                ReqId(99),
                0,
                0,
                AccessKind::Read,
                TrafficClass::DemandRead,
                true,
                0,
                Probe::Data
            ),
            Err(QueuePushError)
        );
    }

    #[test]
    fn bus_serializes_row_hit_bursts() {
        let (mut ch, cfg) = channel();
        let mut stats = DramStats::new(&cfg);
        // 8 row hits to the same row: completions must be spaced ≥ tBURST.
        for i in 0..8 {
            ch.try_push(
                ReqId(i),
                0,
                0,
                AccessKind::Read,
                TrafficClass::DemandRead,
                true,
                0,
                Probe::Data,
            )
            .unwrap();
        }
        let done = drain_until(&mut ch, &mut stats, 400);
        assert_eq!(done.len(), 8);
        for pair in done.windows(2) {
            assert!(pair[1].done_at >= pair[0].done_at + cfg.timing.t_burst);
        }
    }

    #[test]
    fn four_activate_window_throttles_acts() {
        let (mut ch, cfg) = channel();
        let mut stats = DramStats::new(&cfg);
        // Five row misses to five different banks: the fifth ACT must
        // wait for the four-activate window to slide.
        for i in 0..5 {
            ch.try_push(
                ReqId(i),
                i as usize,
                7,
                AccessKind::Read,
                TrafficClass::DemandRead,
                true,
                0,
                Probe::Data,
            )
            .unwrap();
        }
        let done = drain_until(&mut ch, &mut stats, 500);
        assert_eq!(done.len(), 5);
        let t = cfg.timing;
        // ACTs at 0, tRRD, 2·tRRD, 3·tRRD; the fifth no earlier than
        // tFAW. Its data can finish no earlier than tFAW + tRCD + tCL.
        let min_fifth = t.t_faw + t.t_rcd + t.t_cl + t.t_burst;
        let last = done.iter().map(|c| c.done_at).max().expect("non-empty");
        assert!(
            last >= min_fifth,
            "fifth access at {last}, needs >= {min_fifth}"
        );
    }

    #[test]
    fn refresh_eventually_happens() {
        let (mut ch, cfg) = channel();
        let mut stats = DramStats::new(&cfg);
        let mut out = Vec::new();
        for now in 0..(cfg.timing.t_refi * 3) {
            ch.tick_device(now, &mut stats, &mut out);
        }
        assert!(stats.refreshes.get() >= 2);
    }

    #[test]
    fn different_banks_overlap() {
        let (mut ch, cfg) = channel();
        let mut stats = DramStats::new(&cfg);
        ch.try_push(
            ReqId(1),
            0,
            5,
            AccessKind::Read,
            TrafficClass::DemandRead,
            true,
            0,
            Probe::Data,
        )
        .unwrap();
        ch.try_push(
            ReqId(2),
            1,
            7,
            AccessKind::Read,
            TrafficClass::DemandRead,
            true,
            0,
            Probe::Data,
        )
        .unwrap();
        let done = drain_until(&mut ch, &mut stats, 300);
        assert_eq!(done.len(), 2);
        let t = cfg.timing;
        // Bank-level parallelism: the second read should not pay a full
        // serialized PRE+ACT+CAS chain — only the tRRD ACT offset + burst.
        assert!(done[1].done_at <= t.t_rrd + t.t_rcd + t.t_cl + 2 * t.t_burst);
    }

    /// splitmix64 step, for a dependency-free seeded stream.
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The masked scheduler must match the dense-scan oracle cycle by
    /// cycle under seeded random traffic: identical completions,
    /// identical refresh counts, identical residual queues.
    #[test]
    fn masked_scheduler_matches_dense_oracle() {
        for (seed, cfg) in [
            (1u64, DramConfig::hbm()),
            (2, DramConfig::hbm()),
            (3, DramConfig::ddr4_2ch()),
            (4, DramConfig::ddr4_2ch()),
        ] {
            let mut fast = Channel::new(&cfg);
            let mut dense = Channel::new(&cfg);
            let mut stats_fast = DramStats::new(&cfg);
            let mut stats_dense = DramStats::new(&cfg);
            let mut out_fast = Vec::new();
            let mut out_dense = Vec::new();
            let mut rng = seed;
            let mut token = 0u64;
            for now in 0..(cfg.timing.t_refi * 4) {
                // A bursty arrival process over few rows per bank keeps
                // all three scheduler outcomes (row hit, conflict,
                // empty-bank ACT) exercised.
                if mix(&mut rng).is_multiple_of(5) && fast.can_accept() {
                    token += 1;
                    let bank = (mix(&mut rng) % cfg.banks_per_channel as u64) as usize;
                    let row = mix(&mut rng) % 4;
                    let kind = if mix(&mut rng).is_multiple_of(3) {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    fast.try_push(
                        ReqId(token),
                        bank,
                        row,
                        kind,
                        TrafficClass::DemandRead,
                        true,
                        now,
                        Probe::Data,
                    )
                    .unwrap();
                    dense
                        .try_push(
                            ReqId(token),
                            bank,
                            row,
                            kind,
                            TrafficClass::DemandRead,
                            true,
                            now,
                            Probe::Data,
                        )
                        .unwrap();
                }
                fast.tick_device(now, &mut stats_fast, &mut out_fast);
                dense.tick_device_oracle(now, &mut stats_dense, &mut out_dense);
                assert_eq!(out_fast, out_dense, "seed {seed} diverged at cycle {now}");
            }
            assert!(!out_fast.is_empty(), "traffic must complete something");
            assert_eq!(fast.queue_len(), dense.queue_len());
            assert_eq!(fast.queued_mask, dense.queued_mask);
            assert_eq!(stats_fast.refreshes.get(), stats_dense.refreshes.get());
        }
    }

    /// The empty-queue early-out must not perturb refresh scheduling.
    #[test]
    fn early_out_preserves_refresh_schedule() {
        let (mut ch, cfg) = channel();
        let mut stats = DramStats::new(&cfg);
        let mut out = Vec::new();
        // One access, then a long idle window spanning two refreshes.
        ch.try_push(
            ReqId(1),
            2,
            5,
            AccessKind::Read,
            TrafficClass::DemandRead,
            true,
            0,
            Probe::Data,
        )
        .unwrap();
        for now in 0..(cfg.timing.t_refi * 3) {
            ch.tick_device(now, &mut stats, &mut out);
        }
        assert_eq!(out.len(), 1);
        assert!(stats.refreshes.get() >= 2);
    }
}
