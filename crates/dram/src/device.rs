//! The [`Dram`] device façade: address decoding, clock-domain crossing
//! and completion delivery in CPU cycles.

use crate::channel::{Channel, ChannelCompletion};
use crate::config::{AddrMap, DramConfig};
use crate::stats::DramStats;
use nomad_obs::{Gauge, Registry};
use nomad_types::{AccessKind, Cycle, ReqId, TrafficClass};

/// How much of the addressed block a request actually moves over the
/// data bus.
///
/// Everything before the data transfer — bank state, ACT/PRE/CAS
/// timing, FR-FCFS ordering — is identical for both variants; only the
/// burst length (and hence bus occupancy and byte accounting) differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Probe {
    /// A full 64-byte data burst ([`TimingParams::t_burst`](crate::TimingParams) beats).
    #[default]
    Data,
    /// A tag-only probe ([`TimingParams::t_tag`](crate::TimingParams) beats): the
    /// TDRAM-style on-die tag check that returns just the row's tag
    /// metadata, signalling hit/miss without occupying the bus for a
    /// full burst.
    TagOnly,
}

impl Probe {
    /// Bytes this probe moves over the data bus (for bandwidth stats).
    pub fn bytes(self) -> u64 {
        match self {
            Probe::Data => 64,
            Probe::TagOnly => 8,
        }
    }
}

/// A request submitted to a DRAM device. `addr` is a byte address in the
/// device's own address space; only its 64-byte block identity matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramRequest {
    /// Caller-scoped identifier echoed in the completion.
    pub token: ReqId,
    /// Byte address within the device.
    pub addr: u64,
    /// Read or write.
    pub kind: AccessKind,
    /// Bandwidth-attribution class.
    pub class: TrafficClass,
    /// Whether the caller wants a [`DramCompletion`]. Posted writes that
    /// nobody tracks can set this to `false`.
    pub wants_completion: bool,
    /// Full data burst or tag-only probe.
    pub probe: Probe,
}

/// Completion of a DRAM request, delivered in CPU-cycle time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramCompletion {
    /// Token of the completed request.
    pub token: ReqId,
    /// Kind of the completed request.
    pub kind: AccessKind,
    /// Class of the completed request.
    pub class: TrafficClass,
    /// CPU cycle at which the data transfer finished.
    pub at: Cycle,
}

/// A multi-channel DRAM device ticked at CPU clock.
///
/// Each CPU-cycle [`tick`](Dram::tick) advances the internal device
/// clock by the configured rational ratio and pushes any finished
/// transfers into the caller's completion buffer.
#[derive(Debug)]
pub struct Dram {
    cfg: DramConfig,
    map: AddrMap,
    channels: Vec<Channel>,
    stats: DramStats,
    /// Fractional device-clock accumulator.
    clock_acc: u64,
    /// Current device cycle.
    dev_cycle: u64,
    /// Current CPU cycle (count of `tick` calls).
    cpu_cycle: Cycle,
    /// Completions waiting for their device-cycle deadline.
    pending: Vec<ChannelCompletion>,
    /// Memoized minimum `done_at` over `pending` ([`PENDING_DIRTY`]
    /// when stale, [`PENDING_NONE`] when `pending` is empty); pushes
    /// fold into it in O(1), drains invalidate it, so the kernel's
    /// next-activity query stops re-walking the in-flight buffer.
    pending_min: std::cell::Cell<u64>,
    scratch: Vec<ChannelCompletion>,
    obs: Option<DramObs>,
    /// Wall-clock profiling of [`tick`](Self::tick) time, armed by the
    /// simulator's hot-path profile. Off by default: the only cost then
    /// is one predictable branch per tick, and the accumulated time
    /// never feeds back into simulated state.
    profile: bool,
    /// Accumulated tick time in [`nomad_types::fastclock`] raw units.
    profiled_raw: u64,
}

/// Sentinel: [`Dram::pending_min`] must be recomputed.
const PENDING_DIRTY: u64 = u64::MAX;
/// Sentinel: `pending` is empty, no completion deadline exists.
const PENDING_NONE: u64 = u64::MAX - 1;

/// Sampled observability gauges for one DRAM device: traffic totals
/// mirrored from [`DramStats`] plus the instantaneous per-channel queue
/// depth. Refreshed only at sample points — the timing path never
/// touches them.
#[derive(Debug)]
struct DramObs {
    bytes_total: Gauge,
    row_hits: Gauge,
    row_misses: Gauge,
    refreshes: Gauge,
    queue_depth: Vec<Gauge>,
}

impl Dram {
    /// Build a device from its configuration.
    pub fn new(cfg: DramConfig) -> Self {
        let map = cfg.addr_map();
        let channels = (0..cfg.channels).map(|_| Channel::new(&cfg)).collect();
        let stats = DramStats::new(&cfg);
        Dram {
            cfg,
            map,
            channels,
            stats,
            clock_acc: 0,
            dev_cycle: 0,
            cpu_cycle: 0,
            pending: Vec::new(),
            pending_min: std::cell::Cell::new(PENDING_NONE),
            scratch: Vec::new(),
            obs: None,
            profile: false,
            profiled_raw: 0,
        }
    }

    /// Return the device to its just-constructed state — idle channels,
    /// zeroed clock crossing, no in-flight completions, fresh stats —
    /// while keeping every allocation (the arena-reuse path between
    /// sweep cells). The profiling arm and any attached observability
    /// handles are preserved.
    pub fn reset(&mut self) {
        for ch in &mut self.channels {
            ch.reset();
        }
        self.stats.reset();
        self.clock_acc = 0;
        self.dev_cycle = 0;
        self.cpu_cycle = 0;
        self.pending.clear();
        self.pending_min.set(PENDING_NONE);
        self.scratch.clear();
        self.profiled_raw = 0;
    }

    /// Arm (or disarm) wall-clock profiling of tick time. Purely
    /// observational — simulated behaviour is identical either way.
    pub fn set_profile(&mut self, on: bool) {
        if on {
            nomad_types::fastclock::init();
        }
        self.profile = on;
    }

    /// Time spent inside [`tick`](Self::tick) since the last
    /// [`reset_profile`](Self::reset_profile), in
    /// [`nomad_types::fastclock`] raw units; always 0 while profiling
    /// is off.
    pub fn profiled_raw(&self) -> u64 {
        self.profiled_raw
    }

    /// Zero the profiled-time accumulator (e.g. at the end of warm-up).
    pub fn reset_profile(&mut self) {
        self.profiled_raw = 0;
    }

    /// Device configuration.
    pub fn cfg(&self) -> &DramConfig {
        &self.cfg
    }

    /// Register this device's sampled metrics under `prefix` (e.g.
    /// `dram.hbm`): cumulative traffic/row-buffer totals and one queue
    /// depth gauge per channel (`<prefix>.ch.<i>.queue_depth`).
    pub fn attach_obs(&mut self, reg: &Registry, prefix: &str) {
        self.obs = Some(DramObs {
            bytes_total: reg.gauge(
                format!("{prefix}.bytes_total"),
                "bytes",
                "dram",
                "Bytes transferred (all traffic classes) since the measurement reset",
            ),
            row_hits: reg.gauge(
                format!("{prefix}.row_hits"),
                "accesses",
                "dram",
                "Column accesses that hit an open row buffer",
            ),
            row_misses: reg.gauge(
                format!("{prefix}.row_misses"),
                "accesses",
                "dram",
                "Column accesses that required activating a row",
            ),
            refreshes: reg.gauge(
                format!("{prefix}.refreshes"),
                "operations",
                "dram",
                "Refresh operations issued",
            ),
            queue_depth: (0..self.channels.len())
                .map(|i| {
                    reg.gauge(
                        format!("{prefix}.ch.{i}.queue_depth"),
                        "requests",
                        "dram",
                        "Requests queued in this channel at the sample point",
                    )
                })
                .collect(),
        });
    }

    /// Refresh the attached gauges from the live counters; no-op when
    /// obs is not attached.
    pub fn obs_sample(&self) {
        let Some(obs) = &self.obs else { return };
        obs.bytes_total.set(self.stats.total_bytes());
        obs.row_hits.set(self.stats.row_hits.get());
        obs.row_misses.set(self.stats.row_misses.get());
        obs.refreshes.set(self.stats.refreshes.get());
        for (g, ch) in obs.queue_depth.iter().zip(&self.channels) {
            g.set(ch.queue_len() as u64);
        }
    }

    /// Whether the channel serving `addr` can accept one more request.
    pub fn can_accept(&self, addr: u64) -> bool {
        self.channels[self.map.decode(addr).channel].can_accept()
    }

    /// Submit a request; returns it back if the target channel's queue
    /// is full so the caller can retry next cycle.
    pub fn try_push(&mut self, req: DramRequest) -> Result<(), DramRequest> {
        let loc = self.map.decode(req.addr);
        match self.channels[loc.channel].try_push(
            req.token,
            loc.bank,
            loc.row,
            req.kind,
            req.class,
            req.wants_completion,
            self.cpu_cycle,
            req.probe,
        ) {
            Ok(()) => Ok(()),
            Err(_) => Err(req),
        }
    }

    /// Advance one CPU cycle; completed transfers are appended to `out`.
    pub fn tick(&mut self, out: &mut Vec<DramCompletion>) {
        if self.profile {
            let t0 = nomad_types::fastclock::now();
            self.tick_inner(out);
            self.profiled_raw += nomad_types::fastclock::now().wrapping_sub(t0);
        } else {
            self.tick_inner(out);
        }
    }

    fn tick_inner(&mut self, out: &mut Vec<DramCompletion>) {
        self.cpu_cycle += 1;
        self.stats.cpu_cycles += 1;
        self.clock_acc += self.cfg.cpu_per_dev_den;
        if self.clock_acc < self.cfg.cpu_per_dev_num {
            // Between device edges nothing can be scheduled or become
            // deliverable: `dev_cycle` is unchanged and the edge pass
            // below already drained everything due at it.
            return;
        }
        self.clock_acc -= self.cfg.cpu_per_dev_num;
        self.dev_cycle += 1;
        let now = self.dev_cycle;
        self.scratch.clear();
        for ch in &mut self.channels {
            ch.tick_device(now, &mut self.stats, &mut self.scratch);
            self.stats.sample_queue(ch.queue_len());
        }
        for c in self.scratch.drain(..) {
            self.stats.note_row_outcome(c.row_hit);
            self.stats
                .note_transfer(c.class, c.kind.is_write(), c.probe.bytes());
            let pm = self.pending_min.get();
            if pm != PENDING_DIRTY && c.done_at < pm {
                self.pending_min.set(c.done_at);
            }
            self.pending.push(c);
        }
        // Deliver completions whose device deadline has passed.
        let before = self.pending.len();
        let dev_now = self.dev_cycle;
        let cpu_now = self.cpu_cycle;
        let stats = &mut self.stats;
        self.pending.retain(|c| {
            if c.done_at <= dev_now {
                if c.kind == AccessKind::Read {
                    stats
                        .read_latency
                        .record(cpu_now.saturating_sub(c.push_cpu));
                }
                if c.wants_completion {
                    out.push(DramCompletion {
                        token: c.token,
                        kind: c.kind,
                        class: c.class,
                        at: cpu_now,
                    });
                }
                false
            } else {
                true
            }
        });
        if self.pending.len() != before {
            self.pending_min.set(PENDING_DIRTY);
        }
    }

    /// Earliest CPU cycle strictly after `now` at which ticking the
    /// device could issue a command, run refresh machinery, or deliver
    /// a completion.
    ///
    /// While busy, this is not merely the next device-clock edge: the
    /// per-channel `BankFile` timing words give the
    /// exact device cycle of the next possible CAS/PRE/ACT/refresh, and
    /// the `pending` buffer the next completion deadline, so a device
    /// grinding through a long CAS gap reports the far edge directly
    /// instead of pinning the event kernel to dense stepping. The bound
    /// is exact or early, never late; every skipped edge is reproduced
    /// by [`advance`](Self::advance) in bulk.
    ///
    /// Returns `None` when the device is idle — refresh-only progress
    /// is replayed by `advance`, so an idle device never needs a
    /// wake-up. `now` must equal [`cpu_cycle`](Self::cpu_cycle).
    pub fn next_activity_at(&self, now: Cycle) -> Option<Cycle> {
        debug_assert_eq!(now, self.cpu_cycle);
        if self.is_idle() {
            return None;
        }
        let d0 = self.dev_cycle;
        let mut d_next = u64::MAX;
        for ch in &self.channels {
            if let Some(d) = ch.next_interesting_dev_cycle(d0) {
                d_next = d_next.min(d);
            }
        }
        let mut pm = self.pending_min.get();
        if pm == PENDING_DIRTY {
            pm = self
                .pending
                .iter()
                .map(|c| c.done_at)
                .min()
                .unwrap_or(PENDING_NONE);
            self.pending_min.set(pm);
        }
        if pm != PENDING_NONE {
            // Pending deadlines are always > dev_cycle (the edge pass
            // drained everything due).
            d_next = d_next.min(pm);
        }
        debug_assert!(d_next > d0 && d_next != u64::MAX);
        // CPU ticks until the edge counter reaches `d_next`:
        // clock_acc + n·den ≥ k·num  ⇒  n = ⌈(k·num − clock_acc)/den⌉.
        let need = (d_next - d0) * self.cfg.cpu_per_dev_num - self.clock_acc;
        Some(now + need.div_ceil(self.cfg.cpu_per_dev_den))
    }

    /// Advance `delta` CPU cycles in bulk, exactly as `delta` calls to
    /// [`tick`](Self::tick) would across a window in which
    /// [`next_activity_at`](Self::next_activity_at) promised nothing
    /// interesting: CPU counters move, device edges elapse, empty
    /// channels replay their refresh schedule, and busy channels
    /// bulk-record the constant queue-occupancy samples dense edges
    /// would have taken.
    ///
    /// Valid for any `delta` not crossing a cycle the device declared
    /// interesting; the caller (the event kernel) guarantees this by
    /// construction. A sub-edge `delta` is always valid.
    pub fn advance(&mut self, delta: Cycle) {
        if delta == 0 {
            return;
        }
        self.cpu_cycle += delta;
        self.stats.cpu_cycles += delta;
        let total = self.clock_acc + delta * self.cfg.cpu_per_dev_den;
        let edges = total / self.cfg.cpu_per_dev_num;
        self.clock_acc = total % self.cfg.cpu_per_dev_num;
        if edges == 0 {
            return;
        }
        let from = self.dev_cycle;
        self.dev_cycle += edges;
        for ch in &mut self.channels {
            if ch.queue_len() == 0 {
                ch.replay_idle_refreshes(from, self.dev_cycle, &mut self.stats);
                self.stats.sample_queue_idle(edges);
            } else {
                // The skip window contains no issue, refresh or
                // delivery opportunity for this channel, so its only
                // dense-tick residue is the per-edge occupancy sample.
                debug_assert!(
                    ch.next_interesting_dev_cycle(from)
                        .is_none_or(|d| d > self.dev_cycle),
                    "bulk advance crossed an interesting device cycle"
                );
                self.stats.sample_queue_busy(ch.queue_len(), edges);
            }
        }
        debug_assert!(self.pending.iter().all(|c| c.done_at > self.dev_cycle));
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Clear statistics at the end of a warm-up phase.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Whether the device has no queued or in-flight work.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.channels.iter().all(|c| c.queue_len() == 0)
    }

    /// CPU cycles ticked so far.
    pub fn cpu_cycle(&self) -> Cycle {
        self.cpu_cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_req(token: u64, addr: u64) -> DramRequest {
        DramRequest {
            token: ReqId(token),
            addr,
            kind: AccessKind::Read,
            class: TrafficClass::DemandRead,
            wants_completion: true,
            probe: Probe::Data,
        }
    }

    fn run(dram: &mut Dram, cycles: u64) -> Vec<DramCompletion> {
        let mut out = Vec::new();
        for _ in 0..cycles {
            dram.tick(&mut out);
        }
        out
    }

    #[test]
    fn read_latency_close_to_idle_latency() {
        let mut dram = Dram::new(DramConfig::hbm());
        dram.try_push(read_req(1, 0x1000)).unwrap();
        let done = run(&mut dram, 500);
        assert_eq!(done.len(), 1);
        let cfg = DramConfig::hbm();
        let ideal = cfg.dev_to_cpu(cfg.idle_read_latency_dev());
        // Clock-domain rounding adds a few cycles at most.
        assert!(
            done[0].at >= ideal && done[0].at <= ideal + 3 * cfg.dev_to_cpu(1) + 2,
            "latency {} vs ideal {ideal}",
            done[0].at
        );
    }

    #[test]
    fn posted_write_produces_no_completion_but_counts_bytes() {
        let mut dram = Dram::new(DramConfig::hbm());
        dram.try_push(DramRequest {
            token: ReqId(9),
            addr: 0,
            kind: AccessKind::Write,
            class: TrafficClass::Writeback,
            wants_completion: false,
            probe: Probe::Data,
        })
        .unwrap();
        let done = run(&mut dram, 500);
        assert!(done.is_empty());
        assert_eq!(dram.stats().bytes_for(TrafficClass::Writeback).written, 64);
        assert!(dram.is_idle());
    }

    #[test]
    fn tag_probe_finishes_earlier_and_counts_tag_bytes() {
        let cfg = DramConfig::hbm();
        assert!(cfg.timing.t_tag < cfg.timing.t_burst);
        let mut data = Dram::new(cfg.clone());
        let mut tag = Dram::new(cfg);
        data.try_push(read_req(1, 0x1000)).unwrap();
        tag.try_push(DramRequest {
            probe: Probe::TagOnly,
            ..read_req(1, 0x1000)
        })
        .unwrap();
        let a = run(&mut data, 500);
        let b = run(&mut tag, 500);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert!(
            b[0].at < a[0].at,
            "tag probe at {} vs data burst at {}",
            b[0].at,
            a[0].at
        );
        assert_eq!(tag.stats().bytes_for(TrafficClass::DemandRead).read, 8);
        assert_eq!(data.stats().bytes_for(TrafficClass::DemandRead).read, 64);
    }

    #[test]
    fn sequential_page_read_approaches_peak_bandwidth() {
        let mut dram = Dram::new(DramConfig::hbm());
        let mut out = Vec::new();
        let mut pushed = 0u64;
        let mut completed = 0usize;
        let total = 512u64; // 8 pages' worth of blocks
        let mut cycles = 0u64;
        while completed < total as usize {
            while pushed < total {
                if dram.try_push(read_req(pushed, pushed * 64)).is_err() {
                    break;
                }
                pushed += 1;
            }
            dram.tick(&mut out);
            cycles += 1;
            completed += out.len();
            out.clear();
            assert!(cycles < 100_000, "deadlock");
        }
        let gbps = nomad_types::stats::gbps(total * 64, cycles, 3.2);
        // Sequential blocks interleave channels and stay in rows:
        // expect ≥ 60% of the 128 GB/s peak.
        assert!(gbps > 76.8, "got {gbps} GB/s");
        let hit_rate = dram.stats().row_hit_rate();
        assert!(hit_rate > 0.8, "row hit rate {hit_rate}");
    }

    #[test]
    fn random_reads_have_low_row_hit_rate() {
        let mut dram = Dram::new(DramConfig::ddr4_2ch());
        let mut out = Vec::new();
        let mut state = 0x12345u64;
        let mut completed = 0;
        let mut pushed = 0;
        while completed < 256 {
            if pushed < 256 {
                // xorshift for reproducible pseudo-random addresses
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let addr = (state % (1 << 30)) & !63;
                if dram.try_push(read_req(pushed, addr)).is_ok() {
                    pushed += 1;
                }
            }
            dram.tick(&mut out);
            completed += out.len();
            out.clear();
        }
        assert!(dram.stats().row_hit_rate() < 0.5);
    }

    #[test]
    fn ddr_is_five_times_slower_than_hbm_for_streams() {
        let stream = |cfg: DramConfig| -> u64 {
            let mut dram = Dram::new(cfg);
            let mut out = Vec::new();
            let total = 256u64;
            let mut pushed = 0;
            let mut completed = 0;
            let mut cycles = 0;
            while completed < total as usize {
                while pushed < total && dram.try_push(read_req(pushed, pushed * 64)).is_ok() {
                    pushed += 1;
                }
                dram.tick(&mut out);
                cycles += 1;
                completed += out.len();
                out.clear();
            }
            cycles
        };
        let hbm = stream(DramConfig::hbm());
        let ddr = stream(DramConfig::ddr4_2ch());
        let ratio = ddr as f64 / hbm as f64;
        assert!(ratio > 3.0, "DDR/HBM stream-time ratio {ratio}");
    }

    #[test]
    fn idle_advance_matches_dense_ticking() {
        for cfg in [DramConfig::hbm(), DramConfig::ddr4_2ch()] {
            let mut dense = Dram::new(cfg.clone());
            let mut event = Dram::new(cfg.clone());
            // Seed both with identical non-trivial bank/bus state.
            dense.try_push(read_req(1, 0x1000)).unwrap();
            event.try_push(read_req(1, 0x1000)).unwrap();
            run(&mut dense, 500);
            run(&mut event, 500);
            assert!(dense.is_idle() && event.is_idle());

            // Cover several refresh intervals while idle.
            let idle = cfg.dev_to_cpu(cfg.timing.t_refi) * 4 + 7;
            run(&mut dense, idle);
            event.advance(idle);

            assert_eq!(dense.cpu_cycle(), event.cpu_cycle());
            assert_eq!(
                serde_json::to_string(dense.stats()).unwrap(),
                serde_json::to_string(event.stats()).unwrap(),
                "stats diverged after bulk idle advance ({})",
                cfg.name
            );
            assert!(
                dense.stats().refreshes.get() >= 2,
                "window covered refreshes"
            );

            // The hidden channel state (bank timers, refresh phase) must
            // also agree: a follow-up read completes identically.
            dense.try_push(read_req(2, 0x2000)).unwrap();
            event.try_push(read_req(2, 0x2000)).unwrap();
            let a = run(&mut dense, 2000);
            let b = run(&mut event, 2000);
            assert_eq!(a, b, "post-window completion diverged ({})", cfg.name);
            assert!(!a.is_empty());
        }
    }

    /// splitmix64 step, for a dependency-free seeded stream.
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The busy-device event path (exact next-edge bounds + bulk
    /// `advance`) must match dense ticking exactly: identical
    /// completion streams, identical serialized stats — including the
    /// per-edge queue-occupancy samples — under seeded random traffic
    /// with arbitrary push times.
    #[test]
    fn busy_advance_matches_dense_ticking() {
        for (seed, cfg) in [
            (11u64, DramConfig::hbm()),
            (12, DramConfig::hbm()),
            (13, DramConfig::ddr4_2ch()),
            (14, DramConfig::ddr4_2ch()),
        ] {
            let mut dense = Dram::new(cfg.clone());
            let mut event = Dram::new(cfg.clone());
            // Pre-computed push schedule: (cpu_cycle, addr, is_write).
            // Bursty arrivals with long gaps exercise both the busy
            // skip path and idle refresh replay.
            let mut rng = seed;
            let mut pushes: Vec<(u64, u64, bool)> = Vec::new();
            let mut at = 0u64;
            for _ in 0..400 {
                at += match mix(&mut rng) % 4 {
                    0 => 1 + mix(&mut rng) % 3,
                    1 => mix(&mut rng) % 40,
                    2 => mix(&mut rng) % 400,
                    _ => mix(&mut rng) % 4000,
                };
                let addr = (mix(&mut rng) % (1 << 28)) & !63;
                pushes.push((at, addr, mix(&mut rng).is_multiple_of(3)));
            }
            let horizon = at + cfg.dev_to_cpu(cfg.timing.t_refi) * 2 + 5000;

            let req = |i: usize, p: &(u64, u64, bool)| DramRequest {
                token: ReqId(i as u64),
                addr: p.1,
                kind: if p.2 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                class: TrafficClass::DemandRead,
                wants_completion: true,
                probe: Probe::Data,
            };

            // Dense reference: tick every cycle, push on schedule.
            let mut dense_out = Vec::new();
            let mut di = 0;
            for now in 0..horizon {
                while di < pushes.len() && pushes[di].0 == now {
                    // Drop on backpressure in both runs identically:
                    // push attempts happen at the same cpu cycle with
                    // the same device state, so outcomes agree.
                    let _ = dense.try_push(req(di, &pushes[di]));
                    di += 1;
                }
                dense.tick(&mut dense_out);
            }

            // Event path: jump with `advance` whenever the predicted
            // activity and the push schedule allow it.
            let mut event_out = Vec::new();
            let mut ei = 0;
            loop {
                let now = event.cpu_cycle();
                if now >= horizon {
                    break;
                }
                while ei < pushes.len() && pushes[ei].0 == now {
                    let _ = event.try_push(req(ei, &pushes[ei]));
                    ei += 1;
                }
                // Predicted activity fires during the tick that brings
                // cpu_cycle to the prediction; the cycle before it is
                // the last safely skippable one.
                let mut target = match event.next_activity_at(now) {
                    Some(t) => t - 1,
                    None => horizon,
                };
                if ei < pushes.len() {
                    target = target.min(pushes[ei].0);
                }
                target = target.min(horizon);
                if target > now {
                    event.advance(target - now);
                } else {
                    event.tick(&mut event_out);
                }
            }

            assert_eq!(dense.cpu_cycle(), event.cpu_cycle());
            assert_eq!(dense_out, event_out, "completions diverged (seed {seed})");
            assert!(!dense_out.is_empty(), "traffic must complete something");
            assert_eq!(
                serde_json::to_string(dense.stats()).unwrap(),
                serde_json::to_string(event.stats()).unwrap(),
                "stats diverged after busy bulk advance (seed {seed}, {})",
                cfg.name
            );
        }
    }

    #[test]
    fn next_activity_is_never_late() {
        let mut dram = Dram::new(DramConfig::hbm());
        for i in 0..8 {
            dram.try_push(read_req(i, i * 4096)).unwrap();
        }
        let mut out = Vec::new();
        let mut predicted = None;
        for _ in 0..2000 {
            out.clear();
            dram.tick(&mut out);
            if let (false, Some(p)) = (out.is_empty(), predicted) {
                assert!(
                    dram.cpu_cycle() >= p,
                    "completion at {} before predicted activity {p}",
                    dram.cpu_cycle()
                );
            }
            predicted = dram.next_activity_at(dram.cpu_cycle());
        }
        assert!(dram.is_idle());
        assert_eq!(dram.next_activity_at(dram.cpu_cycle()), None);
    }

    #[test]
    fn stats_reset_mid_run() {
        let mut dram = Dram::new(DramConfig::hbm());
        dram.try_push(read_req(1, 0)).unwrap();
        run(&mut dram, 500);
        assert!(dram.stats().total_bytes() > 0);
        dram.reset_stats();
        assert_eq!(dram.stats().total_bytes(), 0);
        assert_eq!(dram.stats().cpu_cycles, 0);
    }
}
