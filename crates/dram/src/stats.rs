//! DRAM device statistics: per-traffic-class byte counts, row-buffer
//! outcomes and utilization — the raw material for the paper's Fig. 10
//! bandwidth-breakdown plot.

use crate::config::DramConfig;
use nomad_types::stats::{gbps, ratio, Counter, RunningMean};
use nomad_types::TrafficClass;
use serde::{Deserialize, Serialize};

/// Bytes transferred on behalf of one traffic class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassBytes {
    /// Bytes read.
    pub read: u64,
    /// Bytes written.
    pub written: u64,
}

impl ClassBytes {
    /// Total bytes moved in either direction.
    pub fn total(&self) -> u64 {
        self.read + self.written
    }
}

/// Statistics for one DRAM device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DramStats {
    /// Device name (for display).
    pub name: String,
    /// CPU clock implied by the device's clock ratio, in GHz.
    pub cpu_clock_ghz: f64,
    /// Theoretical peak bandwidth of the device in GB/s.
    pub peak_gbps: f64,
    /// Bytes per traffic class, indexed like [`TrafficClass::ALL`].
    pub class_bytes: [ClassBytes; 6],
    /// Row-buffer hits (CAS issued without a fresh ACT).
    pub row_hits: Counter,
    /// Row-buffer misses (ACT needed).
    pub row_misses: Counter,
    /// Refresh operations performed.
    pub refreshes: Counter,
    /// Read-request service latency in CPU cycles (push → data).
    pub read_latency: RunningMean,
    /// CPU cycles elapsed while stats were live.
    pub cpu_cycles: u64,
    /// Average command-queue occupancy sample sum / count.
    queue_occupancy_sum: u64,
    queue_occupancy_samples: u64,
}

impl DramStats {
    /// Fresh statistics for a device.
    pub fn new(cfg: &DramConfig) -> Self {
        DramStats {
            name: cfg.name.clone(),
            cpu_clock_ghz: cfg.device_clock_ghz * cfg.cpu_per_dev_num as f64
                / cfg.cpu_per_dev_den as f64,
            peak_gbps: cfg.peak_gbps(),
            class_bytes: [ClassBytes::default(); 6],
            row_hits: Counter::default(),
            row_misses: Counter::default(),
            refreshes: Counter::default(),
            read_latency: RunningMean::new(),
            cpu_cycles: 0,
            queue_occupancy_sum: 0,
            queue_occupancy_samples: 0,
        }
    }

    pub(crate) fn note_transfer(&mut self, class: TrafficClass, is_write: bool, bytes: u64) {
        let idx = TrafficClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("class in ALL");
        if is_write {
            self.class_bytes[idx].written += bytes;
        } else {
            self.class_bytes[idx].read += bytes;
        }
    }

    pub(crate) fn note_row_outcome(&mut self, hit: bool) {
        if hit {
            self.row_hits.inc();
        } else {
            self.row_misses.inc();
        }
    }

    pub(crate) fn sample_queue(&mut self, occupancy: usize) {
        self.queue_occupancy_sum += occupancy as u64;
        self.queue_occupancy_samples += 1;
    }

    /// Record `n` zero-occupancy queue samples at once — what dense
    /// ticking would have sampled across `n` (edge × channel) pairs
    /// while every command queue was empty.
    pub(crate) fn sample_queue_idle(&mut self, n: u64) {
        self.queue_occupancy_samples += n;
    }

    /// Record `n` constant-occupancy queue samples at once — what dense
    /// ticking would have sampled across `n` device edges of a channel
    /// whose queue held `occupancy` commands the whole window (no
    /// command can issue inside an event-kernel skip, so the depth is
    /// pinned).
    pub(crate) fn sample_queue_busy(&mut self, occupancy: usize, n: u64) {
        self.queue_occupancy_sum += occupancy as u64 * n;
        self.queue_occupancy_samples += n;
    }

    /// Bytes moved for `class` (both directions).
    pub fn bytes_for(&self, class: TrafficClass) -> ClassBytes {
        let idx = TrafficClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("class in ALL");
        self.class_bytes[idx]
    }

    /// Total bytes moved across all classes.
    pub fn total_bytes(&self) -> u64 {
        self.class_bytes.iter().map(ClassBytes::total).sum()
    }

    /// Achieved bandwidth for `class` in GB/s over the measured window.
    pub fn class_gbps(&self, class: TrafficClass) -> f64 {
        gbps(
            self.bytes_for(class).total(),
            self.cpu_cycles,
            self.cpu_clock_ghz,
        )
    }

    /// Total achieved bandwidth in GB/s over the measured window.
    pub fn total_gbps(&self) -> f64 {
        gbps(self.total_bytes(), self.cpu_cycles, self.cpu_clock_ghz)
    }

    /// Row-buffer hit rate over all CAS operations.
    pub fn row_hit_rate(&self) -> f64 {
        ratio(
            self.row_hits.get(),
            self.row_hits.get() + self.row_misses.get(),
        )
    }

    /// Mean command-queue occupancy.
    pub fn mean_queue_occupancy(&self) -> f64 {
        ratio(self.queue_occupancy_sum, self.queue_occupancy_samples)
    }

    /// Utilization of the peak bandwidth in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.peak_gbps == 0.0 {
            0.0
        } else {
            self.total_gbps() / self.peak_gbps
        }
    }

    /// Forget everything measured so far (end of warm-up); the device
    /// name and clock metadata are preserved.
    pub fn reset(&mut self) {
        let name = self.name.clone();
        let cpu_clock = self.cpu_clock_ghz;
        let peak = self.peak_gbps;
        *self = DramStats {
            name,
            cpu_clock_ghz: cpu_clock,
            peak_gbps: peak,
            ..DramStats {
                name: String::new(),
                cpu_clock_ghz: 0.0,
                peak_gbps: 0.0,
                class_bytes: [ClassBytes::default(); 6],
                row_hits: Counter::default(),
                row_misses: Counter::default(),
                refreshes: Counter::default(),
                read_latency: RunningMean::new(),
                cpu_cycles: 0,
                queue_occupancy_sum: 0,
                queue_occupancy_samples: 0,
            }
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_attribution() {
        let mut s = DramStats::new(&DramConfig::hbm());
        s.note_transfer(TrafficClass::Fill, true, 64);
        s.note_transfer(TrafficClass::Fill, false, 64);
        s.note_transfer(TrafficClass::DemandRead, false, 128);
        assert_eq!(s.bytes_for(TrafficClass::Fill).total(), 128);
        assert_eq!(s.bytes_for(TrafficClass::DemandRead).read, 128);
        assert_eq!(s.total_bytes(), 256);
    }

    #[test]
    fn row_hit_rate() {
        let mut s = DramStats::new(&DramConfig::hbm());
        s.note_row_outcome(true);
        s.note_row_outcome(true);
        s.note_row_outcome(false);
        assert!((s.row_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reset_preserves_metadata() {
        let mut s = DramStats::new(&DramConfig::ddr4_2ch());
        s.note_transfer(TrafficClass::DemandRead, false, 64);
        s.cpu_cycles = 100;
        s.reset();
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.cpu_cycles, 0);
        assert_eq!(s.name, "DDR4");
        assert!((s.peak_gbps - 25.6).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_math() {
        let mut s = DramStats::new(&DramConfig::hbm());
        // 3.2 GHz CPU clock; 3200 cycles = 1 µs; 64 KiB in 1 µs ≈ 65.5 GB/s.
        s.note_transfer(TrafficClass::DemandRead, false, 65536);
        s.cpu_cycles = 3200;
        assert!((s.total_gbps() - 65.536).abs() < 1e-9);
    }
}
