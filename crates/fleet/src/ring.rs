//! Consistent-hash ring with virtual nodes.
//!
//! Each member slot contributes `vnodes` points to the ring, placed at
//! `splitmix64(fnv1a("node-<slot>#<v>"))` — the workspace content hash
//! over a **stable slot label** (not the node's socket address), passed
//! through the SplitMix64 finalizer because raw FNV-1a of short labels
//! clusters in the high bits and would leave one slot owning most of
//! the circle. Two consequences:
//!
//! * **Placement is reproducible.** A three-node fleet routes a given
//!   content key to the same slot on every run, regardless of which
//!   ephemeral ports the nodes bound — tests can precompute placement,
//!   and a restarted fleet of the same size keeps its arcs.
//! * **Removal only remaps the removed arc.** Dropping a slot deletes
//!   its points; keys that hashed to surviving slots still land on the
//!   same points, so only the dead node's share of the keyspace moves
//!   (the `removal_only_remaps_the_removed_arc` test holds this).
//!
//! A key routes to the slot owning the first ring point at or after
//! the key's own hash position, wrapping at the top of the `u64`
//! circle.

use nomad_faults::splitmix64;
use nomad_types::hash::fnv1a;

/// Ring position of virtual node `v` of member `slot`.
fn point(slot: usize, v: usize) -> u64 {
    splitmix64(fnv1a(format!("node-{slot}#{v}").as_bytes()))
}

/// An immutable ring over a set of member slots. Rebuilt (cheaply)
/// from the surviving slots when membership changes.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, slot)` sorted by point; ties broken by slot so the
    /// ring is deterministic even across point collisions.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Build a ring over `slots`, each contributing `vnodes` points
    /// (clamped ≥ 1).
    pub fn new(slots: &[usize], vnodes: usize) -> Self {
        let vnodes = vnodes.max(1);
        let mut points: Vec<(u64, usize)> = slots
            .iter()
            .flat_map(|&slot| (0..vnodes).map(move |v| (point(slot, v), slot)))
            .collect();
        points.sort_unstable();
        HashRing { points }
    }

    /// The slot owning `key`: the first point clockwise at or after
    /// the key's position, wrapping around the top. `None` on an empty
    /// ring.
    pub fn route(&self, key: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let i = self.points.partition_point(|&(p, _)| p < key);
        Some(if i == self.points.len() {
            self.points[0].1
        } else {
            self.points[i].1
        })
    }

    /// Number of ring points (slots × vnodes).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the ring has no points (no live members).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> Vec<u64> {
        (0..2000u64)
            .map(|i| fnv1a(format!("cell-{i}").as_bytes()))
            .collect()
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let ring = HashRing::new(&[0, 1, 2], 64);
        let again = HashRing::new(&[0, 1, 2], 64);
        for k in keys() {
            let slot = ring.route(k).expect("non-empty ring routes");
            assert_eq!(again.route(k), Some(slot));
            assert!(slot < 3);
        }
    }

    /// The consistent-hashing contract: removing one slot moves only
    /// the keys that slot owned; every other key keeps its owner.
    #[test]
    fn removal_only_remaps_the_removed_arc() {
        let full = HashRing::new(&[0, 1, 2, 3], 64);
        let reduced = HashRing::new(&[0, 1, 3], 64);
        let mut moved = 0usize;
        let keys = keys();
        for &k in &keys {
            let before = full.route(k).expect("route");
            let after = reduced.route(k).expect("route");
            if before == 2 {
                assert_ne!(after, 2, "dead slot must not own keys");
                moved += 1;
            } else {
                assert_eq!(after, before, "surviving arcs must not move");
            }
        }
        assert!(moved > 0, "slot 2 owned some arc of the test keys");
    }

    /// Virtual nodes keep the split rough-but-reasonable: with 64
    /// vnodes per slot no member of a 4-node ring owns more than ~2×
    /// its fair share of a few thousand keys.
    #[test]
    fn vnodes_spread_the_keyspace() {
        let ring = HashRing::new(&[0, 1, 2, 3], 64);
        let mut counts = [0usize; 4];
        let keys = keys();
        for &k in &keys {
            counts[ring.route(k).expect("route")] += 1;
        }
        for (slot, &c) in counts.iter().enumerate() {
            assert!(c > 0, "slot {slot} owns nothing");
            assert!(
                c < keys.len() / 2,
                "slot {slot} owns {c}/{} keys — vnodes not spreading",
                keys.len()
            );
        }
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = HashRing::new(&[], 64);
        assert!(ring.is_empty());
        assert_eq!(ring.route(42), None);
    }

    /// Ring points use stable slot labels, not addresses: the label
    /// digests are pinned in nomad-types, and the finalized point
    /// positions are pinned here — so placement can never drift
    /// silently between releases.
    #[test]
    fn points_are_the_pinned_label_digests() {
        assert_eq!(fnv1a(b"node-0#0"), 0x013a_67d2_f646_5dfb);
        assert_eq!(fnv1a(b"node-1#63"), 0xc8b2_8380_b268_ac23);
        assert_eq!(point(0, 0), 0x3fc1_0291_7393_5c23);
        assert_eq!(point(1, 63), 0x049b_e7c0_434a_84e5);
    }
}
