//! The fleet router: shard a grid across nodes, read every node's
//! cache, steal from stragglers, fail over dead arcs.
//!
//! [`FleetClient::run_grid`] is the fleet-scale counterpart of
//! `nomad_serve::run_grid_via_jobs_with`, and holds the same oracle:
//! **byte-identical rows at any fleet size, any `jobs` width, with or
//! without injected faults** — because cells are pure and
//! content-addressed, it never matters *which* node (or which process)
//! computes one.
//!
//! Per cell, the pipeline is:
//!
//! 1. **Route.** The cell's content key places it on the consistent
//!    ring ([`Membership::route`]); its owner's queue receives it.
//! 2. **Probe before compute.** Before submitting to the owner, the
//!    worker probes every *other* alive node's cache (`Probe` frame);
//!    on a hit it fetches the finished report (`Fetch`) instead of
//!    computing — any node can answer any previously computed cell,
//!    regardless of ring placement. Probe/fetch transport errors are
//!    treated as misses, never as node failures.
//! 3. **Submit with the per-node ladder.** The owner gets the job via
//!    the PR-5 recovery ladder scoped to that node: transport errors
//!    reconnect with capped exponential backoff + deterministic
//!    jitter; past the budget the node is declared dead
//!    ([`Membership::mark_dead`]), its queued cells re-route to the
//!    survivors, and the cell itself re-routes and retries. A
//!    server-side `Failed` gets one in-process retry.
//! 4. **Degrade past the last node.** With every node dead, remaining
//!    cells run in-process (counting `resilience.local_fallbacks`) —
//!    a dead fleet degrades to exactly the local sweep.
//!
//! **Work stealing:** a worker whose home queue is empty re-dispatches
//! the *tail* of the longest alive peer queue to its own (idle) home
//! node — safe duplicate-execution territory because jobs are
//! idempotent and content-keyed. Fault site `fleet.steal` abandons an
//! individual steal attempt; fault site `fleet.member` turns a
//! heartbeat probe into a miss.

use crate::member::{FleetConfig, Membership};
use nomad_serve::proto::{JobSpec, Response};
use nomad_serve::{Client, ClientConfig};
use nomad_sim::runner::Cell;
use nomad_sim::RunReport;
use nomad_types::CancelToken;
use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One routed cell: the grid index it must answer under, plus the job.
struct WorkItem {
    idx: usize,
    job: JobSpec,
}

/// Shared state of one in-flight grid run.
struct RunState {
    members: Arc<Membership>,
    /// One queue per configured slot (dead slots' queues are drained
    /// at failover; they only refill if every node is dead).
    queues: Vec<Mutex<VecDeque<WorkItem>>>,
    /// Cells not yet resolved into `results`.
    remaining: AtomicUsize,
    results: Mutex<Vec<(usize, Result<RunReport, String>)>>,
    cfg: FleetConfig,
}

impl RunState {
    fn push_result(&self, idx: usize, outcome: Result<RunReport, String>) {
        self.results
            .lock()
            .expect("results lock")
            .push((idx, outcome));
        self.remaining.fetch_sub(1, Ordering::SeqCst);
    }

    /// Declare node `idx` dead and re-route its queued cells to the
    /// survivors (one `fleet.failovers` total, whichever of the
    /// ladder or the heartbeat got here first). With no survivors the
    /// cells stay queued and the degraded path drains them locally.
    fn fail_node(&self, idx: usize, why: &str) {
        if !self.members.mark_dead(idx) {
            return;
        }
        eprintln!(
            "nomad-fleet: node {idx} ({}) declared dead ({why}); reassigning its arc",
            self.members.addr(idx)
        );
        let orphans: Vec<WorkItem> = {
            let mut q = self.queues[idx].lock().expect("queue lock");
            q.drain(..).collect()
        };
        for item in orphans {
            let owner = self.members.route(item.job.content_key()).unwrap_or(idx);
            self.queues[owner]
                .lock()
                .expect("queue lock")
                .push_back(item);
        }
    }
}

/// A handle on one fleet of nomad-serve nodes: routing state plus the
/// budgets to reach them. Reusable across grids.
pub struct FleetClient {
    members: Arc<Membership>,
    cfg: FleetConfig,
}

impl FleetClient {
    /// A fleet over `addrs` with environment-derived budgets
    /// ([`FleetConfig::from_env`]).
    pub fn new(addrs: &[String]) -> Self {
        Self::with_config(addrs, FleetConfig::from_env())
    }

    /// A fleet over `addrs` with explicit budgets.
    pub fn with_config(addrs: &[String], cfg: FleetConfig) -> Self {
        FleetClient {
            members: Arc::new(Membership::with_breakers(
                addrs,
                cfg.vnodes,
                cfg.breaker.clone(),
            )),
            cfg,
        }
    }

    /// The live membership view (routing, health) of this fleet.
    pub fn members(&self) -> &Membership {
        &self.members
    }

    /// Run a grid across the fleet; results in input order, first
    /// unrecoverable cell fails the grid (after latching `cancel` so
    /// siblings stop submitting). See the module docs for the per-cell
    /// pipeline and the recovery ladder.
    pub fn run_grid(
        &self,
        cells: Vec<Cell>,
        jobs: usize,
        cancel: &CancelToken,
    ) -> io::Result<Vec<RunReport>> {
        nomad_serve::mirror_faults_to_obs();
        if self.members.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "fleet has no nodes (empty address list)",
            ));
        }
        let total = cells.len();
        let state = RunState {
            members: Arc::clone(&self.members),
            queues: (0..self.members.len())
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            remaining: AtomicUsize::new(total),
            results: Mutex::new(Vec::with_capacity(total)),
            cfg: self.cfg.clone(),
        };
        // Route every cell to its owner's queue, in submission order
        // (deterministic ring + deterministic keys = deterministic
        // placement).
        for (idx, cell) in cells.into_iter().enumerate() {
            let job = JobSpec::from_cell(&cell);
            let owner = state
                .members
                .route(job.content_key())
                .expect("all nodes start alive");
            nomad_obs::fleet().cells_routed.inc();
            state.queues[owner]
                .lock()
                .expect("queue lock")
                .push_back(WorkItem { idx, job });
        }

        let workers = jobs.max(1).min(total.max(1));
        let hb_stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let state = &state;
            let hb_stop = &hb_stop;
            if self.members.len() > 1 {
                scope.spawn(move || heartbeat_loop(state, hb_stop));
            }
            for t in 0..workers {
                scope.spawn(move || worker_loop(t, state, cancel));
            }
            // Workers exit once `remaining` hits zero; then stop the
            // heartbeat. (The scope would otherwise join forever.)
            // This thread doubles as the "done" watcher.
            scope.spawn(move || {
                while state.remaining.load(Ordering::SeqCst) > 0 {
                    std::thread::sleep(Duration::from_millis(2));
                }
                hb_stop.store(true, Ordering::SeqCst);
            });
        });

        let mut collected = state.results.into_inner().expect("threads joined");
        collected.sort_by_key(|(i, _)| *i);
        debug_assert_eq!(collected.len(), total, "every cell resolved exactly once");
        collected
            .into_iter()
            .map(|(_, r)| r.map_err(io::Error::other))
            .collect()
    }
}

/// Drop-in fleet counterpart of `nomad_serve::run_grid_via_jobs`:
/// shard `cells` across the nodes at `addrs` with environment-derived
/// budgets.
pub fn run_grid_via_fleet(
    addrs: &[String],
    cells: Vec<Cell>,
    jobs: usize,
    cancel: &CancelToken,
) -> io::Result<Vec<RunReport>> {
    FleetClient::new(addrs).run_grid(cells, jobs, cancel)
}

/// [`run_grid_via_fleet`] with explicit budgets.
pub fn run_grid_via_fleet_with(
    addrs: &[String],
    cells: Vec<Cell>,
    jobs: usize,
    cancel: &CancelToken,
    cfg: FleetConfig,
) -> io::Result<Vec<RunReport>> {
    FleetClient::with_config(addrs, cfg).run_grid(cells, jobs, cancel)
}

/// One router worker: drain the home queue, steal from stragglers,
/// degrade to local execution once the fleet is gone.
fn worker_loop(t: usize, state: &RunState, cancel: &CancelToken) {
    // Lazily-opened connections, one slot per node, reused across
    // cells (dropped on transport errors).
    let mut conns: Vec<Option<Client>> = (0..state.members.len()).map(|_| None).collect();
    loop {
        if state.remaining.load(Ordering::SeqCst) == 0 {
            return;
        }
        if cancel.is_cancelled() {
            // Flush everything still queued as cancelled; in-flight
            // cells on sibling workers resolve themselves.
            let mut flushed = false;
            for q in &state.queues {
                while let Some(item) = q.lock().expect("queue lock").pop_front() {
                    state.push_result(item.idx, Err("cancelled before submission".to_string()));
                    flushed = true;
                }
            }
            if !flushed {
                std::thread::sleep(Duration::from_millis(1));
            }
            continue;
        }
        let alive = state.members.alive_slots();
        if alive.is_empty() {
            // Degraded: the whole fleet is gone; drain any queue
            // locally (the per-cell ladder already printed why).
            let item = state
                .queues
                .iter()
                .find_map(|q| q.lock().expect("queue lock").pop_front());
            match item {
                Some(item) => {
                    let outcome = run_cell_locally(&item.job, cancel);
                    finish(state, item.idx, outcome, cancel);
                }
                None => std::thread::sleep(Duration::from_millis(1)),
            }
            continue;
        }
        let home = alive[t % alive.len()];
        // Home work first…
        if let Some(item) = state.queues[home].lock().expect("queue lock").pop_front() {
            let outcome = run_item(&item, home, state, &mut conns, cancel);
            finish(state, item.idx, outcome, cancel);
            continue;
        }
        // …then steal the tail of the longest alive peer queue for the
        // idle home node. Fault site `fleet.steal`: an injected fault
        // abandons this attempt (the owner keeps the cell).
        let victim = alive
            .iter()
            .copied()
            .filter(|&n| n != home)
            .map(|n| (state.queues[n].lock().expect("queue lock").len(), n))
            .filter(|&(len, _)| len > 0)
            .max();
        if let Some((_, victim)) = victim {
            if nomad_faults::inject("fleet.steal").is_some() {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            let stolen = state.queues[victim].lock().expect("queue lock").pop_back();
            if let Some(item) = stolen {
                nomad_obs::fleet().steals.inc();
                let outcome = run_item(&item, home, state, &mut conns, cancel);
                finish(state, item.idx, outcome, cancel);
            }
            continue;
        }
        // Queues empty but cells still in flight elsewhere: wait for
        // either new work (a failover re-route) or completion.
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Record one outcome; an unrecoverable cell latches `cancel` so
/// sibling workers stop feeding a doomed grid (mirroring the serve
/// grid runner).
fn finish(state: &RunState, idx: usize, outcome: Result<RunReport, String>, cancel: &CancelToken) {
    if outcome.is_err() {
        cancel.cancel();
    }
    state.push_result(idx, outcome);
}

/// Steps 2–4 of the per-cell pipeline: probe peers, submit to the
/// target through the per-node ladder, re-route on node death, run
/// locally past the last node.
fn run_item(
    item: &WorkItem,
    first_target: usize,
    state: &RunState,
    conns: &mut [Option<Client>],
    cancel: &CancelToken,
) -> Result<RunReport, String> {
    let job = &item.job;
    let key = job.content_key();
    let canonical = job.canonical_json();
    let mut target = first_target;
    // Each pass either succeeds, or kills/reroutes `target`; at most
    // `len` passes before the fleet is empty.
    for _ in 0..=state.members.len() {
        if cancel.is_cancelled() {
            return Err("cancelled during fleet submission".to_string());
        }
        // Breaker gate: a tripped target loses this cell to the next
        // allowed slot. With no alternative we force through the
        // original — an all-tripped fleet must stay usable (the
        // breaker is advisory; death is the ladder's call).
        if !state.members.breaker_allows(target) {
            if let Some(alt) = state.members.route_around(target) {
                nomad_obs::overload().breaker_reroutes.inc();
                target = alt;
            }
        }
        // Shared cache tier: any *other* alive node that already
        // computed this cell answers it without a new simulation.
        if let Some(report) = probe_peers(key, &canonical, target, state, conns) {
            return Ok(report);
        }
        match submit_with_ladder(job, key, target, state, conns, cancel) {
            LadderOutcome::Done(result) => return *result,
            LadderOutcome::NodeDead => {
                state.fail_node(target, "unreachable past the reconnect budget");
                match state.members.route(key) {
                    Some(next) => target = next,
                    None => break,
                }
            }
            LadderOutcome::Overloaded => {
                // The node is shedding past the client's retry budget:
                // give its arc a breather rather than its life. Another
                // slot takes the cell, or we degrade to local.
                match state.members.route_around(target) {
                    Some(next) => {
                        nomad_obs::overload().breaker_reroutes.inc();
                        target = next;
                    }
                    None => return run_cell_locally(job, cancel),
                }
            }
        }
    }
    eprintln!(
        "nomad-fleet: no nodes left for cell {}; degrading to local execution",
        item.idx
    );
    run_cell_locally(job, cancel)
}

/// Probe every alive node except `target` for a completed result;
/// fetch on the first hit. Transport errors are cache misses, not
/// health signals.
fn probe_peers(
    key: u64,
    canonical: &str,
    target: usize,
    state: &RunState,
    conns: &mut [Option<Client>],
) -> Option<RunReport> {
    for peer in state.members.alive_slots() {
        if peer == target {
            continue;
        }
        if conns[peer].is_none() {
            conns[peer] = Client::connect_with(state.members.addr(peer), &state.cfg.client).ok();
        }
        let Some(client) = conns[peer].as_mut() else {
            continue;
        };
        let hit = match client.probe(key, canonical) {
            Ok(hit) => hit,
            Err(_) => {
                conns[peer] = None;
                continue;
            }
        };
        if !hit {
            continue;
        }
        nomad_obs::fleet().probe_hits.inc();
        match conns[peer]
            .as_mut()
            .expect("probed above")
            .fetch(key, canonical)
        {
            Ok(Some(report)) => {
                nomad_obs::fleet().remote_fetches.inc();
                return Some(report);
            }
            Ok(None) => continue,
            Err(_) => {
                conns[peer] = None;
                continue;
            }
        }
    }
    None
}

/// How many `Overloaded` responses the ladder absorbs (sleeping the
/// server's retry-after hint each time) before handing the cell back
/// to the router as [`LadderOutcome::Overloaded`]. Small on purpose:
/// past a few rejections the right move is rerouting, not waiting.
const LADDER_OVERLOAD_RETRIES: u32 = 8;

/// What one node's recovery ladder concluded.
enum LadderOutcome {
    /// The cell resolved (successfully or unrecoverably).
    Done(Box<Result<RunReport, String>>),
    /// The node is unreachable past the budget; fail it over.
    NodeDead,
    /// The node kept shedding past the retry budget; route around it
    /// without declaring it dead.
    Overloaded,
}

/// The PR-5 ladder scoped to one node: reconnect with backoff, count
/// `resilience.serve_reconnects`, give a server-side `Failed` one
/// local retry, and report the node dead past the budget. Every
/// submit outcome also feeds the node's circuit breaker (success,
/// failure, or shed — with the wall-clock latency of the exchange).
fn submit_with_ladder(
    job: &JobSpec,
    salt: u64,
    target: usize,
    state: &RunState,
    conns: &mut [Option<Client>],
    cancel: &CancelToken,
) -> LadderOutcome {
    let cfg: &ClientConfig = &state.cfg.client;
    let addr = state.members.addr(target);
    let mut attempt = 0u32;
    while state.members.is_alive(target) {
        if cancel.is_cancelled() {
            return LadderOutcome::Done(Box::new(Err(
                "cancelled during fleet submission".to_string()
            )));
        }
        if conns[target].is_none() {
            match Client::connect_with(addr, cfg) {
                Ok(c) => {
                    if attempt > 0 {
                        nomad_obs::resilience().serve_reconnects.inc();
                    }
                    conns[target] = Some(c);
                }
                Err(_) => {
                    attempt += 1;
                    if attempt > cfg.reconnect_attempts {
                        return LadderOutcome::NodeDead;
                    }
                    std::thread::sleep(cfg.backoff(salt, attempt));
                    continue;
                }
            }
        }
        let client = conns[target].as_mut().expect("connected above");
        let t0 = std::time::Instant::now();
        match client.submit_retrying(job, LADDER_OVERLOAD_RETRIES) {
            Ok(Response::Report { report, .. }) => {
                state.members.record_outcome(target, true, t0.elapsed());
                return LadderOutcome::Done(Box::new(Ok(report)));
            }
            Ok(Response::Failed { error, attempts }) => {
                // The node answered; a job-level failure is not a
                // node-health signal.
                state.members.record_outcome(target, true, t0.elapsed());
                eprintln!(
                    "nomad-fleet: node {target} failed the job after {attempts} attempts \
                     ({error}); retrying locally"
                );
                return LadderOutcome::Done(Box::new(run_cell_locally(job, cancel)));
            }
            Ok(Response::Overloaded { .. }) => {
                state.members.record_outcome(target, false, t0.elapsed());
                return LadderOutcome::Overloaded;
            }
            Ok(Response::Expired { error }) => {
                // The node shed the job (queue-delay controller); treat
                // like overload pressure and compute the cell locally.
                state.members.record_outcome(target, false, t0.elapsed());
                eprintln!("nomad-fleet: node {target} shed the job ({error}); running locally");
                return LadderOutcome::Done(Box::new(run_cell_locally(job, cancel)));
            }
            Ok(other) => {
                return LadderOutcome::Done(Box::new(Err(format!(
                    "unexpected response: {other:?}"
                ))))
            }
            Err(_) => {
                state.members.record_outcome(target, false, t0.elapsed());
                conns[target] = None;
                attempt += 1;
                if attempt > cfg.reconnect_attempts {
                    return LadderOutcome::NodeDead;
                }
                std::thread::sleep(cfg.backoff(salt, attempt));
            }
        }
    }
    // Another worker (or the heartbeat) already declared this node
    // dead while we were backing off.
    LadderOutcome::NodeDead
}

/// Degraded-mode execution, identical in spirit to the serve client's:
/// run in-process, count one `resilience.local_fallbacks`, catch
/// panics.
fn run_cell_locally(job: &JobSpec, cancel: &CancelToken) -> Result<RunReport, String> {
    nomad_obs::resilience().local_fallbacks.inc();
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        job.run_local_cancellable(cancel)
    })) {
        Ok(Some(report)) => Ok(report),
        Ok(None) => Err("cancelled during local fallback".to_string()),
        Err(_) => Err("local fallback panicked".to_string()),
    }
}

/// Ping every alive node each interval; `fleet.heartbeat_misses`
/// consecutive failures (or injected `fleet.member` faults) past the
/// threshold fail the node over — so even a node nobody is currently
/// submitting to loses its arc promptly.
fn heartbeat_loop(state: &RunState, stop: &AtomicBool) {
    let interval = state.cfg.heartbeat_interval;
    let threshold = state.cfg.heartbeat_misses;
    // Short connect/IO budgets: a heartbeat must not hang behind a
    // stalled node for the full transport timeout.
    let hb_cfg = ClientConfig {
        connect_timeout: state
            .cfg
            .client
            .connect_timeout
            .min(Duration::from_millis(500)),
        io_timeout: Some(Duration::from_millis(1_000)),
        ..state.cfg.client.clone()
    };
    while !stop.load(Ordering::SeqCst) {
        // Sleep in small slices so shutdown is prompt even under slow
        // heartbeat cadences.
        let mut slept = Duration::ZERO;
        while slept < interval && !stop.load(Ordering::SeqCst) {
            let slice = Duration::from_millis(5).min(interval - slept);
            std::thread::sleep(slice);
            slept += slice;
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
        for idx in state.members.alive_slots() {
            // Fault site `fleet.member`: an injected fault is a missed
            // heartbeat, exercising failover without killing anything.
            let miss = if nomad_faults::inject("fleet.member").is_some() {
                true
            } else {
                match Client::connect_with(state.members.addr(idx), &hb_cfg) {
                    Ok(mut c) => c.ping().is_err(),
                    Err(_) => true,
                }
            };
            if miss {
                if state.members.heartbeat_miss(idx, threshold) {
                    state.fail_node(idx, "missed heartbeats past the threshold");
                }
            } else {
                state.members.heartbeat_ok(idx);
            }
        }
    }
}
