//! Fleet membership: who is alive, who owns which arc, and when a
//! node is declared dead.
//!
//! A [`Membership`] starts with every configured node alive and a
//! [`HashRing`] over all slots. Health flows in
//! from two sides — the router's per-node reconnect ladder (a node
//! unreachable past the budget) and the heartbeat thread (consecutive
//! failed pings past `heartbeat_misses`) — and both funnel into
//! [`Membership::mark_dead`], which is idempotent per node: exactly
//! one caller wins the CAS, counts one `fleet.failovers`, and rebuilds
//! the ring from the survivors so the dead node's arc (and only that
//! arc) is reassigned live. Nodes never resurrect within a run:
//! membership is monotone, which keeps routing decisions from
//! oscillating while a flaky node bounces.
//!
//! Fault site `fleet.route`: an injected fault at routing time skips
//! the ring and falls back to the first alive node — simulating a
//! corrupted placement decision, which the content-addressed jobs make
//! harmless (any node computes the same bytes).

use crate::ring::HashRing;
use nomad_serve::ClientConfig;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Tuning knobs for the fleet router, heartbeats and ring.
///
/// [`FleetConfig::from_env`] reads each fleet field from an
/// environment variable (falling back to the default on unset or
/// garbage) and the per-node transport budgets from the documented
/// `NOMAD_SERVE_*` variables via [`ClientConfig::from_env`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Virtual nodes per member on the hash ring
    /// (`NOMAD_FLEET_VNODES`, default 64).
    pub vnodes: usize,
    /// Per-node transport and reconnect budgets (the PR-5 ladder,
    /// applied per node instead of per server).
    pub client: ClientConfig,
    /// Heartbeat cadence (`NOMAD_FLEET_HB_MS`, default 200).
    pub heartbeat_interval: Duration,
    /// Consecutive heartbeat misses before a node is declared dead
    /// (`NOMAD_FLEET_HB_MISSES`, default 2, clamped ≥ 1).
    pub heartbeat_misses: u32,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            vnodes: 64,
            client: ClientConfig::default(),
            heartbeat_interval: Duration::from_millis(200),
            heartbeat_misses: 2,
        }
    }
}

impl FleetConfig {
    /// The defaults, overridden by any `NOMAD_FLEET_*` /
    /// `NOMAD_SERVE_*` environment variables that are set and parse.
    pub fn from_env() -> Self {
        fn num(var: &str) -> Option<u64> {
            std::env::var(var).ok()?.trim().parse().ok()
        }
        let mut cfg = FleetConfig {
            client: ClientConfig::from_env(),
            ..FleetConfig::default()
        };
        if let Some(v) = num("NOMAD_FLEET_VNODES") {
            cfg.vnodes = (v.clamp(1, 4096)) as usize;
        }
        if let Some(v) = num("NOMAD_FLEET_HB_MS") {
            cfg.heartbeat_interval = Duration::from_millis(v.max(1));
        }
        if let Some(v) = num("NOMAD_FLEET_HB_MISSES") {
            cfg.heartbeat_misses = (v.clamp(1, u32::MAX as u64)) as u32;
        }
        cfg
    }
}

/// One fleet member.
struct Node {
    addr: String,
    alive: AtomicBool,
    /// Consecutive heartbeat misses (reset by a successful ping).
    hb_misses: AtomicU32,
}

/// The live membership view shared by router workers and the
/// heartbeat thread.
pub struct Membership {
    nodes: Vec<Node>,
    ring: Mutex<HashRing>,
    alive_count: AtomicUsize,
    vnodes: usize,
}

impl Membership {
    /// All nodes alive, ring over every slot.
    pub fn new(addrs: &[String], vnodes: usize) -> Self {
        let nodes: Vec<Node> = addrs
            .iter()
            .map(|a| Node {
                addr: a.clone(),
                alive: AtomicBool::new(true),
                hb_misses: AtomicU32::new(0),
            })
            .collect();
        let slots: Vec<usize> = (0..nodes.len()).collect();
        Membership {
            alive_count: AtomicUsize::new(nodes.len()),
            ring: Mutex::new(HashRing::new(&slots, vnodes)),
            nodes,
            vnodes,
        }
    }

    /// Total configured nodes (alive or dead).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the fleet was configured with no nodes at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The address of slot `idx`.
    pub fn addr(&self, idx: usize) -> &str {
        &self.nodes[idx].addr
    }

    /// Whether slot `idx` is still alive.
    pub fn is_alive(&self, idx: usize) -> bool {
        self.nodes[idx].alive.load(Ordering::SeqCst)
    }

    /// Currently alive slot count.
    pub fn alive_count(&self) -> usize {
        self.alive_count.load(Ordering::SeqCst)
    }

    /// Slots currently alive, in slot order.
    pub fn alive_slots(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.is_alive(i))
            .collect()
    }

    /// The lowest alive slot, if any.
    pub fn first_alive(&self) -> Option<usize> {
        (0..self.nodes.len()).find(|&i| self.is_alive(i))
    }

    /// The slot owning content key `key`, per the ring over the alive
    /// slots; `None` once every node is dead.
    ///
    /// Fault site `fleet.route`: an injected fault falls back to the
    /// first alive node instead of consulting the ring.
    pub fn route(&self, key: u64) -> Option<usize> {
        if nomad_faults::inject("fleet.route").is_some() {
            return self.first_alive();
        }
        self.ring.lock().expect("ring lock").route(key)
    }

    /// Declare slot `idx` dead and rebuild the ring from the
    /// survivors, so only the dead node's arc is reassigned. Returns
    /// `true` for exactly one caller per node (that caller counts the
    /// `fleet.failovers` and re-routes the dead node's queue); later
    /// callers see `false` and do nothing.
    pub fn mark_dead(&self, idx: usize) -> bool {
        if self.nodes[idx]
            .alive
            .compare_exchange(true, false, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return false;
        }
        self.alive_count.fetch_sub(1, Ordering::SeqCst);
        let slots = self.alive_slots();
        *self.ring.lock().expect("ring lock") = HashRing::new(&slots, self.vnodes);
        nomad_obs::fleet().failovers.inc();
        true
    }

    /// Record one failed heartbeat for slot `idx`; returns `true` when
    /// the consecutive-miss threshold is reached (the caller then
    /// fails the node over).
    pub fn heartbeat_miss(&self, idx: usize, threshold: u32) -> bool {
        nomad_obs::fleet().heartbeat_misses.inc();
        let misses = self.nodes[idx].hb_misses.fetch_add(1, Ordering::SeqCst) + 1;
        misses >= threshold.max(1)
    }

    /// Record a successful heartbeat for slot `idx` (resets the
    /// consecutive-miss counter).
    pub fn heartbeat_ok(&self, idx: usize) {
        self.nodes[idx].hb_misses.store(0, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(n: usize) -> Membership {
        let addrs: Vec<String> = (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect();
        Membership::new(&addrs, 64)
    }

    #[test]
    fn death_is_monotone_and_counted_once() {
        let m = members(3);
        assert_eq!(m.alive_count(), 3);
        let before = nomad_obs::fleet().value("fleet.failovers").expect("row");
        assert!(m.mark_dead(1), "first caller wins");
        assert!(!m.mark_dead(1), "second caller loses");
        assert_eq!(m.alive_count(), 2);
        assert!(!m.is_alive(1));
        assert_eq!(m.alive_slots(), vec![0, 2]);
        let after = nomad_obs::fleet().value("fleet.failovers").expect("row");
        assert_eq!(after, before + 1, "one failover per node death");
    }

    #[test]
    fn routing_skips_dead_arcs_and_survives_to_the_last_node() {
        let m = members(3);
        let keys: Vec<u64> = (0..500u64)
            .map(|i| nomad_types::hash::fnv1a(format!("k{i}").as_bytes()))
            .collect();
        m.mark_dead(0);
        for &k in &keys {
            let slot = m.route(k).expect("nodes remain");
            assert_ne!(slot, 0, "dead slot must not own keys");
        }
        m.mark_dead(2);
        for &k in &keys {
            assert_eq!(m.route(k), Some(1), "last node owns everything");
        }
        m.mark_dead(1);
        assert_eq!(m.route(keys[0]), None, "empty fleet routes nowhere");
        assert_eq!(m.first_alive(), None);
    }

    #[test]
    fn heartbeat_misses_accumulate_and_reset() {
        let m = members(2);
        assert!(!m.heartbeat_miss(0, 2), "one miss is not death");
        m.heartbeat_ok(0);
        assert!(!m.heartbeat_miss(0, 2), "reset counter starts over");
        assert!(m.heartbeat_miss(0, 2), "two consecutive misses hit");
    }
}
