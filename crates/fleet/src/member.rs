//! Fleet membership: who is alive, who owns which arc, and when a
//! node is declared dead.
//!
//! A [`Membership`] starts with every configured node alive and a
//! [`HashRing`] over all slots. Health flows in
//! from two sides — the router's per-node reconnect ladder (a node
//! unreachable past the budget) and the heartbeat thread (consecutive
//! failed pings past `heartbeat_misses`) — and both funnel into
//! [`Membership::mark_dead`], which is idempotent per node: exactly
//! one caller wins the CAS, counts one `fleet.failovers`, and rebuilds
//! the ring from the survivors so the dead node's arc (and only that
//! arc) is reassigned live. Nodes never resurrect within a run:
//! membership is monotone, which keeps routing decisions from
//! oscillating while a flaky node bounces.
//!
//! Fault site `fleet.route`: an injected fault at routing time skips
//! the ring and falls back to the first alive node — simulating a
//! corrupted placement decision, which the content-addressed jobs make
//! harmless (any node computes the same bytes).
//!
//! **Circuit breakers** ([`Breaker`]) sit one rung below `mark_dead`
//! on the health ladder: a node that keeps failing or responding
//! slowly gets its breaker *tripped* (Open) and the router routes
//! around it for a cooldown, then sends a single half-open probe to
//! test recovery — all without declaring the node dead or touching the
//! ring. Death stays monotone; breakers oscillate freely. Fault site
//! `fleet.breaker`: an injected fault at outcome-recording time forces
//! the outcome to a failure, so chaos plans can trip breakers on a
//! healthy fleet.

use crate::ring::HashRing;
use nomad_serve::ClientConfig;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tuning knobs for the fleet router, heartbeats and ring.
///
/// [`FleetConfig::from_env`] reads each fleet field from an
/// environment variable (falling back to the default on unset or
/// garbage) and the per-node transport budgets from the documented
/// `NOMAD_SERVE_*` variables via [`ClientConfig::from_env`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Virtual nodes per member on the hash ring
    /// (`NOMAD_FLEET_VNODES`, default 64).
    pub vnodes: usize,
    /// Per-node transport and reconnect budgets (the PR-5 ladder,
    /// applied per node instead of per server).
    pub client: ClientConfig,
    /// Heartbeat cadence (`NOMAD_FLEET_HB_MS`, default 200).
    pub heartbeat_interval: Duration,
    /// Consecutive heartbeat misses before a node is declared dead
    /// (`NOMAD_FLEET_HB_MISSES`, default 2, clamped ≥ 1).
    pub heartbeat_misses: u32,
    /// Per-node circuit-breaker thresholds.
    pub breaker: BreakerConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            vnodes: 64,
            client: ClientConfig::default(),
            heartbeat_interval: Duration::from_millis(200),
            heartbeat_misses: 2,
            breaker: BreakerConfig::default(),
        }
    }
}

impl FleetConfig {
    /// The defaults, overridden by any `NOMAD_FLEET_*` /
    /// `NOMAD_SERVE_*` environment variables that are set and parse.
    pub fn from_env() -> Self {
        use nomad_types::env;
        let d = FleetConfig::default();
        FleetConfig {
            vnodes: env::usize_clamped("NOMAD_FLEET_VNODES", d.vnodes, 1, 4096),
            client: ClientConfig::from_env(),
            heartbeat_interval: env::ms_clamped(
                "NOMAD_FLEET_HB_MS",
                d.heartbeat_interval.as_millis() as u64,
                1,
                u64::MAX,
            ),
            heartbeat_misses: env::u64_clamped(
                "NOMAD_FLEET_HB_MISSES",
                d.heartbeat_misses as u64,
                1,
                u32::MAX as u64,
            ) as u32,
            breaker: BreakerConfig::from_env(),
        }
    }
}

/// Thresholds for one node's circuit breaker.
///
/// The breaker watches a rolling window of the last `window` submit
/// outcomes. Once `fail_threshold` of them are failures the breaker
/// *trips* (Closed → Open): the router routes around the node for
/// `cooldown` and then lets one probe through (Open → HalfOpen). A
/// successful probe closes the breaker; a failed one re-opens it for
/// another cooldown. `latency_threshold` (0 = disabled) additionally
/// counts *slow successes* as failures, so a node limping along at 10×
/// its peers' latency sheds its traffic without ever erroring.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Rolling outcome-window length (`NOMAD_FLEET_BREAKER_WINDOW`,
    /// default 16, clamped 1..=1024).
    pub window: u32,
    /// Failures within the window that trip the breaker
    /// (`NOMAD_FLEET_BREAKER_FAILS`, default 8, clamped ≥ 1).
    pub fail_threshold: u32,
    /// How long a tripped breaker stays open before probing
    /// (`NOMAD_FLEET_BREAKER_COOLDOWN_MS`, default 500).
    pub cooldown: Duration,
    /// Successes slower than this count as failures; zero disables the
    /// latency rule (`NOMAD_FLEET_BREAKER_LATENCY_MS`, default 0).
    pub latency_threshold: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 16,
            fail_threshold: 8,
            cooldown: Duration::from_millis(500),
            latency_threshold: Duration::ZERO,
        }
    }
}

impl BreakerConfig {
    /// The defaults, overridden by any `NOMAD_FLEET_BREAKER_*`
    /// environment variables that are set and parse.
    pub fn from_env() -> Self {
        use nomad_types::env;
        let d = BreakerConfig::default();
        BreakerConfig {
            window: env::u64_clamped("NOMAD_FLEET_BREAKER_WINDOW", d.window as u64, 1, 1024) as u32,
            fail_threshold: env::u64_clamped(
                "NOMAD_FLEET_BREAKER_FAILS",
                d.fail_threshold as u64,
                1,
                1024,
            ) as u32,
            cooldown: env::ms_clamped(
                "NOMAD_FLEET_BREAKER_COOLDOWN_MS",
                d.cooldown.as_millis() as u64,
                1,
                u64::MAX,
            ),
            latency_threshold: env::ms_or(
                "NOMAD_FLEET_BREAKER_LATENCY_MS",
                d.latency_threshold.as_millis() as u64,
            ),
        }
    }
}

/// Where one breaker currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; outcomes feed the rolling window.
    Closed,
    /// Tripped: the router routes around this node until the cooldown
    /// elapses.
    Open,
    /// Cooldown elapsed: exactly one probe is in flight; its outcome
    /// decides Closed vs. re-Open.
    HalfOpen,
}

/// A per-node circuit breaker over a pure millisecond clock.
///
/// Every method takes `now_ms` explicitly (milliseconds on any
/// monotonic per-process clock), so the same state machine drives both
/// the live router (fed from [`Membership::now_ms`]) and the
/// virtual-time load generator — deterministic tests never sleep.
#[derive(Debug)]
pub struct Breaker {
    cfg: BreakerConfig,
    inner: Mutex<BreakerInner>,
    trips: AtomicU64,
    probes: AtomicU64,
    closes: AtomicU64,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    /// Newest-first bitmask of the last `window` outcomes (1 = failure).
    outcomes: u64,
    /// When the current Open cooldown started, or when the outstanding
    /// HalfOpen probe was issued.
    since_ms: u64,
}

impl Breaker {
    /// A closed breaker with `cfg` thresholds. Windows wider than 64
    /// outcomes are clamped (the rolling window is a u64 bitmask).
    pub fn new(cfg: BreakerConfig) -> Self {
        let cfg = BreakerConfig {
            window: cfg.window.clamp(1, 64),
            ..cfg
        };
        Breaker {
            cfg,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                outcomes: 0,
                since_ms: 0,
            }),
            trips: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            closes: AtomicU64::new(0),
        }
    }

    /// The current state (for status displays and tests).
    pub fn state(&self) -> BreakerState {
        self.inner.lock().expect("breaker lock").state
    }

    /// Times this breaker tripped (entered Open).
    pub fn trip_count(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Half-open probes this breaker issued.
    pub fn probe_count(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Times this breaker closed again after a successful probe.
    pub fn close_count(&self) -> u64 {
        self.closes.load(Ordering::Relaxed)
    }

    /// May traffic flow to this node right now?
    ///
    /// Closed: always. Open: only once the cooldown has elapsed — that
    /// caller becomes the half-open probe. HalfOpen: the outstanding
    /// probe blocks further traffic, but after *another* cooldown a
    /// fresh probe is allowed (a probe whose caller rerouted before
    /// sending must not wedge the breaker half-open forever).
    pub fn allow(&self, now_ms: u64) -> bool {
        let mut inner = self.inner.lock().expect("breaker lock");
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open | BreakerState::HalfOpen => {
                if now_ms.saturating_sub(inner.since_ms) < self.cfg.cooldown.as_millis() as u64 {
                    return false;
                }
                inner.state = BreakerState::HalfOpen;
                inner.since_ms = now_ms;
                self.probes.fetch_add(1, Ordering::Relaxed);
                nomad_obs::overload().breaker_probes.inc();
                true
            }
        }
    }

    /// Fold one submit outcome in. Slow successes (past the latency
    /// threshold, when enabled) count as failures. Outcomes arriving
    /// while Open are ignored — they belong to requests that were
    /// already in flight when the breaker tripped.
    pub fn record(&self, now_ms: u64, ok: bool, latency: Duration) {
        let failed =
            !ok || (!self.cfg.latency_threshold.is_zero() && latency > self.cfg.latency_threshold);
        let mut inner = self.inner.lock().expect("breaker lock");
        match inner.state {
            BreakerState::Open => {}
            BreakerState::HalfOpen => {
                if failed {
                    self.trip(&mut inner, now_ms);
                } else {
                    inner.state = BreakerState::Closed;
                    inner.outcomes = 0;
                    self.closes.fetch_add(1, Ordering::Relaxed);
                    nomad_obs::overload().breaker_closes.inc();
                }
            }
            BreakerState::Closed => {
                inner.outcomes = (inner.outcomes << 1) | u64::from(failed);
                let window_mask = if self.cfg.window == 64 {
                    u64::MAX
                } else {
                    (1u64 << self.cfg.window) - 1
                };
                let failures = (inner.outcomes & window_mask).count_ones();
                if failures >= self.cfg.fail_threshold {
                    self.trip(&mut inner, now_ms);
                }
            }
        }
    }

    fn trip(&self, inner: &mut BreakerInner, now_ms: u64) {
        inner.state = BreakerState::Open;
        inner.since_ms = now_ms;
        inner.outcomes = 0;
        self.trips.fetch_add(1, Ordering::Relaxed);
        nomad_obs::overload().breaker_trips.inc();
    }
}

/// One fleet member.
struct Node {
    addr: String,
    alive: AtomicBool,
    /// Consecutive heartbeat misses (reset by a successful ping).
    hb_misses: AtomicU32,
    /// Overload/health breaker, one rung below `mark_dead`.
    breaker: Breaker,
}

/// The live membership view shared by router workers and the
/// heartbeat thread.
pub struct Membership {
    nodes: Vec<Node>,
    ring: Mutex<HashRing>,
    alive_count: AtomicUsize,
    vnodes: usize,
    /// Epoch for the breakers' millisecond clock.
    started: Instant,
}

impl Membership {
    /// All nodes alive, ring over every slot, default breaker
    /// thresholds.
    pub fn new(addrs: &[String], vnodes: usize) -> Self {
        Self::with_breakers(addrs, vnodes, BreakerConfig::default())
    }

    /// [`Membership::new`] with explicit breaker thresholds.
    pub fn with_breakers(addrs: &[String], vnodes: usize, breaker: BreakerConfig) -> Self {
        let nodes: Vec<Node> = addrs
            .iter()
            .map(|a| Node {
                addr: a.clone(),
                alive: AtomicBool::new(true),
                hb_misses: AtomicU32::new(0),
                breaker: Breaker::new(breaker.clone()),
            })
            .collect();
        let slots: Vec<usize> = (0..nodes.len()).collect();
        Membership {
            alive_count: AtomicUsize::new(nodes.len()),
            ring: Mutex::new(HashRing::new(&slots, vnodes)),
            nodes,
            vnodes,
            started: Instant::now(),
        }
    }

    /// Milliseconds since this membership view was created — the
    /// breakers' clock.
    pub fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Slot `idx`'s breaker (status displays and tests).
    pub fn breaker(&self, idx: usize) -> &Breaker {
        &self.nodes[idx].breaker
    }

    /// Whether slot `idx` may receive traffic right now (alive and its
    /// breaker admits it — possibly as a half-open probe).
    pub fn breaker_allows(&self, idx: usize) -> bool {
        self.is_alive(idx) && self.nodes[idx].breaker.allow(self.now_ms())
    }

    /// Fold one submit outcome into slot `idx`'s breaker.
    ///
    /// Fault site `fleet.breaker`: an injected fault forces the
    /// outcome to a failure, so chaos plans can trip breakers without
    /// a genuinely failing node.
    pub fn record_outcome(&self, idx: usize, ok: bool, latency: Duration) {
        let ok = ok && nomad_faults::inject("fleet.breaker").is_none();
        self.nodes[idx].breaker.record(self.now_ms(), ok, latency);
    }

    /// The next slot after `avoid` (wrapping, in slot order) that is
    /// alive and whose breaker admits traffic; `None` when no other
    /// slot qualifies.
    pub fn route_around(&self, avoid: usize) -> Option<usize> {
        let n = self.nodes.len();
        (1..n)
            .map(|step| (avoid + step) % n)
            .find(|&idx| self.breaker_allows(idx))
    }

    /// Total configured nodes (alive or dead).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the fleet was configured with no nodes at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The address of slot `idx`.
    pub fn addr(&self, idx: usize) -> &str {
        &self.nodes[idx].addr
    }

    /// Whether slot `idx` is still alive.
    pub fn is_alive(&self, idx: usize) -> bool {
        self.nodes[idx].alive.load(Ordering::SeqCst)
    }

    /// Currently alive slot count.
    pub fn alive_count(&self) -> usize {
        self.alive_count.load(Ordering::SeqCst)
    }

    /// Slots currently alive, in slot order.
    pub fn alive_slots(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.is_alive(i))
            .collect()
    }

    /// The lowest alive slot, if any.
    pub fn first_alive(&self) -> Option<usize> {
        (0..self.nodes.len()).find(|&i| self.is_alive(i))
    }

    /// The slot owning content key `key`, per the ring over the alive
    /// slots; `None` once every node is dead.
    ///
    /// Fault site `fleet.route`: an injected fault falls back to the
    /// first alive node instead of consulting the ring.
    pub fn route(&self, key: u64) -> Option<usize> {
        if nomad_faults::inject("fleet.route").is_some() {
            return self.first_alive();
        }
        self.ring.lock().expect("ring lock").route(key)
    }

    /// Declare slot `idx` dead and rebuild the ring from the
    /// survivors, so only the dead node's arc is reassigned. Returns
    /// `true` for exactly one caller per node (that caller counts the
    /// `fleet.failovers` and re-routes the dead node's queue); later
    /// callers see `false` and do nothing.
    pub fn mark_dead(&self, idx: usize) -> bool {
        if self.nodes[idx]
            .alive
            .compare_exchange(true, false, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return false;
        }
        self.alive_count.fetch_sub(1, Ordering::SeqCst);
        let slots = self.alive_slots();
        *self.ring.lock().expect("ring lock") = HashRing::new(&slots, self.vnodes);
        nomad_obs::fleet().failovers.inc();
        true
    }

    /// Record one failed heartbeat for slot `idx`; returns `true` when
    /// the consecutive-miss threshold is reached (the caller then
    /// fails the node over).
    pub fn heartbeat_miss(&self, idx: usize, threshold: u32) -> bool {
        nomad_obs::fleet().heartbeat_misses.inc();
        let misses = self.nodes[idx].hb_misses.fetch_add(1, Ordering::SeqCst) + 1;
        misses >= threshold.max(1)
    }

    /// Record a successful heartbeat for slot `idx` (resets the
    /// consecutive-miss counter).
    pub fn heartbeat_ok(&self, idx: usize) {
        self.nodes[idx].hb_misses.store(0, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(n: usize) -> Membership {
        let addrs: Vec<String> = (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect();
        Membership::new(&addrs, 64)
    }

    #[test]
    fn death_is_monotone_and_counted_once() {
        let m = members(3);
        assert_eq!(m.alive_count(), 3);
        let before = nomad_obs::fleet().value("fleet.failovers").expect("row");
        assert!(m.mark_dead(1), "first caller wins");
        assert!(!m.mark_dead(1), "second caller loses");
        assert_eq!(m.alive_count(), 2);
        assert!(!m.is_alive(1));
        assert_eq!(m.alive_slots(), vec![0, 2]);
        let after = nomad_obs::fleet().value("fleet.failovers").expect("row");
        assert_eq!(after, before + 1, "one failover per node death");
    }

    #[test]
    fn routing_skips_dead_arcs_and_survives_to_the_last_node() {
        let m = members(3);
        let keys: Vec<u64> = (0..500u64)
            .map(|i| nomad_types::hash::fnv1a(format!("k{i}").as_bytes()))
            .collect();
        m.mark_dead(0);
        for &k in &keys {
            let slot = m.route(k).expect("nodes remain");
            assert_ne!(slot, 0, "dead slot must not own keys");
        }
        m.mark_dead(2);
        for &k in &keys {
            assert_eq!(m.route(k), Some(1), "last node owns everything");
        }
        m.mark_dead(1);
        assert_eq!(m.route(keys[0]), None, "empty fleet routes nowhere");
        assert_eq!(m.first_alive(), None);
    }

    #[test]
    fn heartbeat_misses_accumulate_and_reset() {
        let m = members(2);
        assert!(!m.heartbeat_miss(0, 2), "one miss is not death");
        m.heartbeat_ok(0);
        assert!(!m.heartbeat_miss(0, 2), "reset counter starts over");
        assert!(m.heartbeat_miss(0, 2), "two consecutive misses hit");
    }

    fn breaker(fails: u32, cooldown_ms: u64, latency_ms: u64) -> Breaker {
        Breaker::new(BreakerConfig {
            window: 8,
            fail_threshold: fails,
            cooldown: Duration::from_millis(cooldown_ms),
            latency_threshold: Duration::from_millis(latency_ms),
        })
    }

    #[test]
    fn breaker_trips_at_the_window_threshold_and_cools_down() {
        let b = breaker(3, 100, 0);
        let fast = Duration::from_millis(1);
        b.record(0, false, fast);
        b.record(1, false, fast);
        assert_eq!(b.state(), BreakerState::Closed, "two failures stay closed");
        assert!(b.allow(2));
        b.record(2, false, fast);
        assert_eq!(b.state(), BreakerState::Open, "third failure trips");
        assert_eq!(b.trip_count(), 1);
        assert!(!b.allow(50), "open within the cooldown blocks traffic");
        assert!(b.allow(102), "cooldown elapsed: one probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.probe_count(), 1);
        assert!(!b.allow(103), "the outstanding probe blocks a second");
        b.record(110, true, fast);
        assert_eq!(b.state(), BreakerState::Closed, "good probe closes");
        assert_eq!(b.close_count(), 1);
        // The window cleared on close: old failures don't linger.
        b.record(111, false, fast);
        b.record(112, false, fast);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_and_a_stuck_probe_expires() {
        let b = breaker(1, 100, 0);
        b.record(0, false, Duration::ZERO);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allow(100));
        b.record(105, false, Duration::ZERO);
        assert_eq!(b.state(), BreakerState::Open, "failed probe re-opens");
        assert_eq!(b.trip_count(), 2);
        // A probe whose caller rerouted before sending must not wedge
        // the breaker half-open: another cooldown earns a fresh probe.
        assert!(b.allow(210));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(215));
        assert!(b.allow(320), "re-probe after another full cooldown");
        assert_eq!(b.probe_count(), 3);
    }

    #[test]
    fn slow_successes_count_as_failures_when_the_latency_rule_is_on() {
        let b = breaker(2, 100, 50);
        b.record(0, true, Duration::from_millis(300));
        b.record(1, true, Duration::from_millis(300));
        assert_eq!(b.state(), BreakerState::Open, "slow successes trip");
        let off = breaker(2, 100, 0);
        off.record(0, true, Duration::from_millis(300));
        off.record(1, true, Duration::from_millis(300));
        assert_eq!(off.state(), BreakerState::Closed, "rule disabled at 0");
    }

    #[test]
    fn route_around_skips_tripped_breakers_without_killing_nodes() {
        let m = members(3);
        // Trip node 1's breaker with direct failure records.
        for _ in 0..8 {
            m.record_outcome(1, false, Duration::ZERO);
        }
        assert_eq!(m.breaker(1).state(), BreakerState::Open);
        assert!(m.is_alive(1), "a tripped breaker is not death");
        assert_eq!(m.alive_count(), 3);
        assert!(!m.breaker_allows(1));
        assert_eq!(m.route_around(1), Some(2), "next slot in order");
        assert_eq!(m.route_around(0), Some(2), "skips the tripped slot");
        // With 1 tripped and 2 dead, only 0 remains.
        m.mark_dead(2);
        assert_eq!(m.route_around(1), Some(0));
        assert_eq!(m.route_around(0), None, "no *other* slot qualifies");
    }
}
