//! The nomad-fleet coordinator CLI.
//!
//! ```text
//! nomad-fleet local N [--workers W] [--queue N] [--timeout-ms N]
//!                     [--retries N] [--cache-dir BASE | --no-cache-dir]
//! nomad-fleet status   [--addrs HOST:PORT,...]
//! nomad-fleet shutdown [--addrs HOST:PORT,...]
//! ```
//!
//! `local N` spawns N in-process `nomad-serve` nodes on ephemeral
//! ports and prints one machine-parseable line:
//!
//! ```text
//! NOMAD_FLEET_ADDRS=127.0.0.1:41231,127.0.0.1:41233,...
//! ```
//!
//! which is exactly the variable the bench harnesses read to route
//! sweeps through the fleet — `export` the printed line and every
//! `cargo run -p nomad-bench --bin fig09` shards across the nodes.
//! Each node spills its result cache to `<BASE>/node-<i>` (default
//! base `results/fleet-cache`). The fleet serves until `shutdown`.
//!
//! `status` pings every node and prints per-node queue/cache/job
//! counters; `shutdown` stops them gracefully. Both read `--addrs` or,
//! when the flag is absent, `NOMAD_FLEET_ADDRS`.

use nomad_fleet::parse_addrs;
use nomad_serve::{serve, Client, ServerConfig};
use std::path::PathBuf;
use std::time::Duration;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--help") || args.is_empty() {
        usage();
        return;
    }
    let mode = args.remove(0);
    match mode.as_str() {
        "local" => local(args),
        "status" => status(addrs_from(args)),
        "shutdown" => shutdown(addrs_from(args)),
        "-h" | "help" => usage(),
        other => die(&format!("unknown mode `{other}` (try --help)")),
    }
}

fn usage() {
    println!(
        "usage: nomad-fleet local N [--workers W] [--queue N] [--timeout-ms N] [--retries N] \
         [--cache-dir BASE | --no-cache-dir]\n       \
         nomad-fleet status   [--addrs HOST:PORT,...]\n       \
         nomad-fleet shutdown [--addrs HOST:PORT,...]"
    );
}

/// Spawn N in-process serve nodes and print the fleet address line.
fn local(args: Vec<String>) {
    let mut args = args.into_iter();
    let n: usize = match args.next() {
        Some(raw) => parse(&raw, "node count"),
        None => die("local needs a node count (nomad-fleet local N)"),
    };
    if n == 0 {
        die("node count must be at least 1");
    }
    let mut template = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        overload: nomad_serve::OverloadConfig::from_env(),
        ..ServerConfig::default()
    };
    let mut cache_base = Some(PathBuf::from("results/fleet-cache"));
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--workers" => template.workers = parse(&value("--workers"), "--workers"),
            "--queue" => template.queue_capacity = parse(&value("--queue"), "--queue"),
            "--timeout-ms" => {
                template.job_timeout =
                    Duration::from_millis(parse(&value("--timeout-ms"), "--timeout-ms"))
            }
            "--retries" => template.retry_budget = parse(&value("--retries"), "--retries"),
            "--cache-dir" => cache_base = Some(PathBuf::from(value("--cache-dir"))),
            "--no-cache-dir" => cache_base = None,
            other => die(&format!("unknown flag `{other}` (try --help)")),
        }
    }

    let mut handles = Vec::with_capacity(n);
    for i in 0..n {
        let cfg = ServerConfig {
            cache_dir: cache_base.as_ref().map(|b| b.join(format!("node-{i}"))),
            ..template.clone()
        };
        match serve(cfg) {
            Ok(h) => handles.push(h),
            Err(e) => die(&format!("node {i} bind failed: {e}")),
        }
    }
    let addrs: Vec<String> = handles.iter().map(|h| h.local_addr().to_string()).collect();
    for (i, addr) in addrs.iter().enumerate() {
        eprintln!(
            "nomad-fleet: node {i} listening on {addr} ({} workers)",
            template.workers
        );
    }
    // The one machine-parseable line: everything else goes to stderr.
    println!("NOMAD_FLEET_ADDRS={}", addrs.join(","));
    for handle in handles {
        handle.join();
    }
    eprintln!("nomad-fleet: all nodes shut down");
}

/// `--addrs` flag, falling back to `NOMAD_FLEET_ADDRS`.
fn addrs_from(args: Vec<String>) -> Vec<String> {
    let mut args = args.into_iter();
    let mut raw = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addrs" => raw = args.next(),
            other => die(&format!("unknown flag `{other}` (try --help)")),
        }
    }
    let raw = raw
        .or_else(|| std::env::var("NOMAD_FLEET_ADDRS").ok())
        .unwrap_or_else(|| die("no fleet addresses (pass --addrs or set NOMAD_FLEET_ADDRS)"));
    let addrs = parse_addrs(&raw);
    if addrs.is_empty() {
        die("fleet address list is empty");
    }
    addrs
}

fn status(addrs: Vec<String>) {
    let mut down = 0usize;
    for (i, addr) in addrs.iter().enumerate() {
        match Client::connect(addr).and_then(|mut c| c.stats()) {
            Ok(s) => {
                let counter = |name: &str| {
                    s.counters
                        .iter()
                        .find(|r| r.name == name)
                        .map_or(0, |r| r.value)
                };
                let shed = counter("overload.admit_shed")
                    + counter("overload.queue_shed")
                    + counter("overload.codel_shed")
                    + counter("overload.exec_shed");
                println!(
                    "node {i} {addr}: up, queue {}/{} (oldest {} ms), {} workers, jobs {} \
                     submitted / {} completed / {} failed, shed {shed} ({} expired ran), \
                     cache {} hits / {} entries",
                    s.queue_depth,
                    s.queue_capacity,
                    s.queue_oldest_ms,
                    s.workers,
                    s.jobs_submitted,
                    s.jobs_completed,
                    s.jobs_failed,
                    counter("overload.expired_executions"),
                    s.cache_hits,
                    s.cache_entries
                );
            }
            Err(e) => {
                down += 1;
                println!("node {i} {addr}: DOWN ({e})");
            }
        }
    }
    if down > 0 {
        std::process::exit(1);
    }
}

fn shutdown(addrs: Vec<String>) {
    for (i, addr) in addrs.iter().enumerate() {
        match Client::connect(addr).and_then(|mut c| c.shutdown_server()) {
            Ok(()) => println!("node {i} {addr}: shutting down"),
            Err(e) => println!("node {i} {addr}: unreachable ({e})"),
        }
    }
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("invalid value `{s}` for {what}")))
}

fn die(msg: &str) -> ! {
    eprintln!("nomad-fleet: {msg}");
    std::process::exit(2);
}
