//! nomad-fleet: a sharded multi-node serve tier over `nomad-serve`.
//!
//! One `nomad-serve` process turns sweeps into jobs against a single
//! cache-backed worker pool; this crate coordinates **N** of them:
//!
//! * **Consistent-hash routing** ([`ring`]) — every cell's
//!   content key places it on a 64-vnode hash ring over stable slot
//!   labels, so placement is reproducible across runs and ephemeral
//!   ports, and removing a node remaps only its arc.
//! * **Shared cache reads** ([`router`]) — before computing, the
//!   router probes every other node's content-addressed result cache
//!   (`Probe`/`Fetch` protocol frames); a cell any node already
//!   finished is fetched, not recomputed.
//! * **Cross-node work stealing** — a worker whose home node's queue
//!   ran dry re-dispatches the tail of the longest straggler queue to
//!   its idle home node, safe because jobs are idempotent and
//!   content-keyed.
//! * **Membership and failover** ([`member`]) — per-node health from
//!   heartbeats plus the per-node reconnect ladder; a dead node's arc
//!   is reassigned to the survivors, and past the last node the
//!   remaining cells degrade to in-process execution.
//! * **Circuit breakers** ([`member::Breaker`]) — one rung below
//!   death: a node that keeps failing, shedding, or responding slowly
//!   trips its breaker and loses traffic for a cooldown, then earns it
//!   back through a single half-open probe. The ring never changes and
//!   the node is never declared dead, so membership stays monotone
//!   while overload oscillates freely.
//!
//! The house oracle carries over from the serve tier: a grid run
//! through [`run_grid_via_fleet`] produces **byte-identical**
//! `RunReport`s at any fleet size, any `jobs` width, with or without
//! injected faults (`fleet_parity` and the fleet chaos matrix hold
//! this).
//!
//! Fault sites (see `nomad-faults`): `fleet.route` (placement falls
//! back to the first alive node), `fleet.steal` (a steal attempt is
//! abandoned), `fleet.member` (a heartbeat probe counts as missed),
//! `fleet.breaker` (a submit outcome is recorded as a failure).
//! Fleet metrics are registered under `fleet.*` (breaker activity
//! under `overload.*`) in `nomad-obs` and documented in `METRICS.md`.

#![warn(missing_docs)]

pub mod member;
pub mod ring;
pub mod router;

pub use member::{Breaker, BreakerConfig, BreakerState, FleetConfig, Membership};
pub use ring::HashRing;
pub use router::{run_grid_via_fleet, run_grid_via_fleet_with, FleetClient};

/// Parse a fleet address list: comma- and/or whitespace-separated
/// `host:port` entries, trimmed, empties dropped. This is the accepted
/// syntax of `NOMAD_FLEET_ADDRS` and every `--addrs` flag.
pub fn parse_addrs(raw: &str) -> Vec<String> {
    raw.split([',', ' ', '\t', '\n'])
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_lists_accept_commas_and_whitespace() {
        assert_eq!(
            parse_addrs("127.0.0.1:1, 127.0.0.1:2 ,,\n127.0.0.1:3"),
            vec!["127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3"]
        );
        assert!(parse_addrs("  ").is_empty());
        assert!(parse_addrs("").is_empty());
    }
}
