//! DRAM-cache scheme abstraction and the paper's comparison schemes.
//!
//! Everything below the shared LLC is a [`DcScheme`]: it owns the page
//! table (OS-managed schemes keep DC tags in PTEs), handles page-table
//! walks including DC tag misses, routes demand traffic to the
//! on-package HBM or the off-package DDR4, and drives both DRAM devices.
//!
//! This crate provides the scheme *substrates* the paper compares
//! NOMAD against:
//!
//! * [`Baseline`] — off-package memory only (lower bound);
//! * [`Ideal`] — an OS-managed DC with zero miss-handling cost (upper
//!   bound), also used to measure Table I's RMHB/MPMS characteristics;
//! * [`Tid`] — the HW-based *tags-in-DRAM* design modeled after Unison
//!   Cache: 1 KiB lines, 4-way sets with an ideal way predictor,
//!   tag/metadata traffic in on-package DRAM, MSHRs with
//!   critical-block-first fills;
//! * [`Banshee`] — page-granular, TLB/PTE-tracked tags with a
//!   sampled-frequency, bandwidth-aware replacement policy and lazy
//!   tag-table writeback;
//! * [`Tdram`] — a HW-managed design with per-row *on-die* tags: hits
//!   are single DRAM accesses, misses are detected early by cheap
//!   tag-only probes ([`nomad_dram::Probe::TagOnly`]).
//!
//! The NOMAD scheme itself (and TDC, which shares its front-end) lives
//! in the `nomad-core` crate; shared machinery — the circular
//! cache-frame free queue with cache page descriptors ([`CacheFrames`])
//! and the demand-routing helper ([`DemandPath`]) — lives here so both
//! crates can use it.

mod banshee;
mod baseline;
mod demand;
mod frames;
mod ideal;
mod scheme;
mod stats;
mod tdram;
mod tid;

pub use banshee::{Banshee, BansheeConfig};
pub use baseline::Baseline;
pub use demand::DemandPath;
pub use frames::{CacheFrames, Cpd, EvictCandidate};
pub use ideal::Ideal;
pub use scheme::{CacheFlush, DcAccessReq, DcScheme, NoFlush, SchemeEvents, WalkOutcome};
pub use stats::{SchemeStats, SchemeStatsObs};
pub use tdram::{Tdram, TdramConfig};
pub use tid::{Tid, TidConfig};
