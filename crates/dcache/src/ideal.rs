//! The ideal OS-managed DRAM cache (Fig. 9's "Ideal" upper bound, and
//! the configuration under which Table I's RMHB/MPMS were measured).

use crate::demand::DemandPath;
use crate::frames::CacheFrames;
use crate::scheme::{CacheFlush, DcAccessReq, DcScheme, SchemeEvents, WalkOutcome};
use crate::stats::SchemeStats;
use nomad_cache::{FrameKind, PageTable, TlbEntry};
use nomad_dram::Dram;
use nomad_types::{AccessKind, CoreId, Cycle, MemResp, TrafficClass, Vpn, PAGE_SIZE};

/// An OS-managed DRAM cache with zero miss-handling cost: tag misses
/// allocate a frame and complete instantaneously, page data appears in
/// the cache with no fill traffic, and evictions are free. Every demand
/// access is an on-package DRAM hit.
///
/// Besides being Fig. 9's upper bound, this scheme *counts* the page
/// fetches a real OS-managed cache would have performed, which is
/// exactly Table I's required miss-handling bandwidth (RMHB) metric.
#[derive(Debug)]
pub struct Ideal {
    page_table: PageTable,
    frames: CacheFrames,
    hbm_demand: DemandPath,
    ddr_demand: DemandPath,
    stats: SchemeStats,
    queue_limit: usize,
    /// Free-frame threshold triggering (free) batch eviction.
    eviction_threshold: usize,
    eviction_batch: usize,
    /// Evicted frames whose SRAM lines still need flushing (applied on
    /// the next tick, when the flusher is available).
    pending_flush: Vec<u64>,
    /// TLB shootdowns owed for force-evicted frames (reported through
    /// [`SchemeEvents`] on the next tick).
    pending_shootdown: Vec<Vpn>,
    /// Reusable eviction-victim buffer for `reclaim_if_needed`.
    evict_scratch: Vec<crate::frames::EvictCandidate>,
}

impl Ideal {
    /// An ideal DRAM cache of `capacity_bytes` on-package capacity.
    pub fn new(capacity_bytes: u64) -> Self {
        let frames = (capacity_bytes / PAGE_SIZE).max(16) as usize;
        Ideal {
            page_table: PageTable::new(),
            frames: CacheFrames::new(frames),
            hbm_demand: DemandPath::new(),
            ddr_demand: DemandPath::new(),
            stats: SchemeStats::default(),
            queue_limit: 64,
            eviction_threshold: (frames / 32).max(8),
            eviction_batch: 64,
            pending_flush: Vec::new(),
            pending_shootdown: Vec::new(),
            evict_scratch: Vec::new(),
        }
    }

    /// The scheme's page table.
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }

    fn reclaim_if_needed(&mut self) {
        let mut evicted = std::mem::take(&mut self.evict_scratch);
        while self.frames.num_free() < self.eviction_threshold {
            evicted.clear();
            self.frames
                .evict_batch_into(self.eviction_batch, &mut evicted);
            if evicted.is_empty() {
                break;
            }
            for e in &evicted {
                self.page_table.uncache_all(e.cpd.pfn);
                self.pending_flush.push(e.cfn.raw());
                self.stats.evictions.inc();
            }
        }
        // Last resort: every frame's translation is TLB-resident (the
        // cache is smaller than the combined TLB reach), so
        // shootdown-avoiding eviction made no progress. Force-evict
        // and owe the shootdowns — free here, like everything else in
        // the ideal scheme, but the TLB directory must stay coherent.
        if self.frames.num_free() == 0 {
            evicted.clear();
            self.frames
                .evict_batch_force_into(self.eviction_batch, |_| false, &mut evicted);
            for e in &evicted {
                for &vpn in self.page_table.reverse_map(e.cpd.pfn) {
                    self.pending_shootdown.push(Vpn(vpn));
                }
                self.page_table.uncache_all(e.cpd.pfn);
                self.pending_flush.push(e.cfn.raw());
                self.stats.evictions.inc();
            }
        }
        self.evict_scratch = evicted;
    }
}

impl DcScheme for Ideal {
    fn name(&self) -> &'static str {
        "Ideal"
    }

    fn walk(
        &mut self,
        core: CoreId,
        vpn: Vpn,
        _sub: nomad_types::SubBlockIdx,
        kind: AccessKind,
        _now: Cycle,
    ) -> WalkOutcome {
        let pte = *self.page_table.pte_mut(vpn);
        if pte.tag_miss() {
            // Free tag-miss handling: allocate instantly, count the
            // page fetch that a real scheme would have performed.
            let pfn = match pte.frame {
                FrameKind::Phys(pfn) => pfn,
                FrameKind::Cache(_) => unreachable!("tag_miss implies phys"),
            };
            self.reclaim_if_needed();
            let (cfn, _) = self
                .frames
                .allocate(pfn)
                .expect("reclaim guarantees a free frame");
            self.page_table.cache_all(pfn, cfn);
            self.stats.tag_misses.inc();
        }
        let pte = self.page_table.pte_mut(vpn);
        if kind.is_write() {
            pte.dirty = true;
            if let FrameKind::Cache(cfn) = pte.frame {
                self.frames.set_dirty(cfn);
            }
        }
        // TLB directory: the system reports insertions via
        // `tlb_inserted`, so nothing more to do here.
        let _ = core;
        WalkOutcome::Ready {
            entry: TlbEntry {
                vpn,
                frame: pte.frame,
                noncacheable: pte.noncacheable,
            },
        }
    }

    fn prewarm(&mut self, _core: CoreId, vpn: Vpn, dirty: bool) {
        let pte = *self.page_table.pte_mut(vpn);
        if pte.tag_miss() {
            let FrameKind::Phys(pfn) = pte.frame else {
                return;
            };
            self.reclaim_if_needed();
            if let Some((cfn, _)) = self.frames.allocate(pfn) {
                self.page_table.cache_all(pfn, cfn);
                if dirty {
                    self.frames.set_dirty(cfn);
                }
            }
        }
    }

    fn free_frames(&self) -> Option<u64> {
        Some(self.frames.num_free() as u64)
    }

    fn can_accept(&self) -> bool {
        self.hbm_demand.has_room(self.queue_limit) && self.ddr_demand.has_room(self.queue_limit)
    }

    fn access(&mut self, req: DcAccessReq, now: Cycle) {
        let class = if req.kind.is_write() {
            self.stats.demand_writes.inc();
            TrafficClass::DemandWrite
        } else {
            self.stats.demand_reads.inc();
            TrafficClass::DemandRead
        };
        match req.target {
            nomad_types::MemTarget::DramCache => {
                self.stats.dc_data_hits.inc();
                self.hbm_demand.submit(req, req.addr.base(), class, now);
            }
            nomad_types::MemTarget::OffPackage => {
                // Non-cacheable or never-walked page: off-package.
                self.stats.offpkg_demand.inc();
                self.ddr_demand.submit(req, req.addr.base(), class, now);
            }
        }
    }

    fn tick(
        &mut self,
        now: Cycle,
        hbm: &mut Dram,
        ddr: &mut Dram,
        flush: &mut dyn CacheFlush,
        events: &mut SchemeEvents,
    ) {
        for page in self.pending_flush.drain(..) {
            flush.flush_dc_page(page);
        }
        events.shootdowns.append(&mut self.pending_shootdown);
        self.hbm_demand.drain(hbm);
        self.ddr_demand.drain(ddr);
        let mut done = Vec::new();
        hbm.tick(&mut done);
        for c in done.drain(..) {
            if let Some((req, arrived)) = self.hbm_demand.complete(c.token) {
                self.stats
                    .dc_access_time
                    .record(now.saturating_sub(arrived));
                events.responses.push(MemResp {
                    token: req.token,
                    addr: req.addr,
                    kind: req.kind,
                    core: req.core,
                });
            }
        }
        ddr.tick(&mut done);
        for c in done {
            if let Some((req, arrived)) = self.ddr_demand.complete(c.token) {
                self.stats
                    .dc_access_time
                    .record(now.saturating_sub(arrived));
                events.responses.push(MemResp {
                    token: req.token,
                    addr: req.addr,
                    kind: req.kind,
                    core: req.core,
                });
            }
        }
    }

    fn next_activity_at(&self, now: Cycle) -> Option<Cycle> {
        // Deferred SRAM flushes and queued demand both need a tick;
        // in-flight reads complete on device edges the system already
        // watches.
        if !self.pending_flush.is_empty()
            || !self.pending_shootdown.is_empty()
            || self.hbm_demand.has_queued()
            || self.ddr_demand.has_queued()
        {
            Some(now + 1)
        } else {
            None
        }
    }

    fn tlb_inserted(&mut self, core: CoreId, vpn: Vpn) {
        if let Some(pte) = self.page_table.get(vpn) {
            if let FrameKind::Cache(cfn) = pte.frame {
                self.frames.tlb_set(cfn, core);
            }
        }
    }

    fn tlb_departed(&mut self, core: CoreId, vpn: Vpn) {
        if let Some(pte) = self.page_table.get(vpn) {
            if let FrameKind::Cache(cfn) = pte.frame {
                self.frames.tlb_clear(cfn, core);
            }
        }
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::NoFlush;
    use nomad_dram::DramConfig;
    use nomad_types::{BlockAddr, MemTarget, ReqId};

    #[test]
    fn tag_miss_allocates_instantly() {
        let mut s = Ideal::new(1 << 20); // 256 frames
        match s.walk(0, Vpn(1), nomad_types::SubBlockIdx(0), AccessKind::Read, 0) {
            WalkOutcome::Ready { entry } => {
                assert!(matches!(entry.frame, FrameKind::Cache(_)));
            }
            _ => panic!("ideal never blocks"),
        }
        assert_eq!(s.stats().tag_misses.get(), 1);
        // Second walk: no new tag miss.
        s.walk(0, Vpn(1), nomad_types::SubBlockIdx(0), AccessKind::Read, 1);
        assert_eq!(s.stats().tag_misses.get(), 1);
    }

    #[test]
    fn capacity_pressure_causes_fifo_reuse() {
        let mut s = Ideal::new(64 * PAGE_SIZE); // 64 frames
        for v in 0..200u64 {
            s.walk(0, Vpn(v), nomad_types::SubBlockIdx(0), AccessKind::Read, v);
        }
        assert_eq!(s.stats().tag_misses.get(), 200);
        assert!(s.stats().evictions.get() > 0);
        // A long-evicted early page tag-misses again.
        s.walk(
            0,
            Vpn(0),
            nomad_types::SubBlockIdx(0),
            AccessKind::Read,
            999,
        );
        assert_eq!(s.stats().tag_misses.get(), 201);
    }

    #[test]
    fn demand_served_from_hbm() {
        let mut s = Ideal::new(1 << 20);
        let mut hbm = Dram::new(DramConfig::hbm());
        let mut ddr = Dram::new(DramConfig::ddr4_2ch());
        let mut ev = SchemeEvents::default();
        s.access(
            DcAccessReq {
                token: ReqId(3),
                addr: BlockAddr(0x40),
                target: MemTarget::DramCache,
                kind: AccessKind::Read,
                core: 0,
                wants_response: true,
            },
            0,
        );
        for now in 0..500 {
            s.tick(now, &mut hbm, &mut ddr, &mut NoFlush, &mut ev);
        }
        assert_eq!(ev.responses.len(), 1);
        assert!(hbm.stats().total_bytes() > 0);
        assert_eq!(ddr.stats().total_bytes(), 0);
    }

    /// A cache smaller than the combined TLB reach: shootdown-avoiding
    /// eviction can free nothing, so the force path must kick in (and
    /// owe shootdowns) instead of panicking on allocation.
    #[test]
    fn tlb_saturated_cache_force_evicts_instead_of_panicking() {
        let mut s = Ideal::new(16 * PAGE_SIZE); // 16 frames
        for v in 0..16u64 {
            s.walk(0, Vpn(v), nomad_types::SubBlockIdx(0), AccessKind::Read, v);
            s.tlb_inserted(0, Vpn(v));
        }
        // Every frame is pinned; the next distinct page must still walk.
        match s.walk(
            0,
            Vpn(99),
            nomad_types::SubBlockIdx(0),
            AccessKind::Read,
            99,
        ) {
            WalkOutcome::Ready { entry } => {
                assert!(matches!(entry.frame, FrameKind::Cache(_)));
            }
            _ => panic!("ideal never blocks"),
        }
        assert!(s.stats().evictions.get() > 0, "forced eviction happened");
        // The owed shootdowns surface on the next tick.
        let mut hbm = Dram::new(DramConfig::hbm());
        let mut ddr = Dram::new(DramConfig::ddr4_2ch());
        let mut ev = SchemeEvents::default();
        s.tick(0, &mut hbm, &mut ddr, &mut NoFlush, &mut ev);
        assert!(!ev.shootdowns.is_empty(), "forced eviction owes shootdowns");
    }

    #[test]
    fn tlb_resident_pages_survive_eviction() {
        let mut s = Ideal::new(64 * PAGE_SIZE);
        s.walk(0, Vpn(0), nomad_types::SubBlockIdx(0), AccessKind::Read, 0);
        s.tlb_inserted(0, Vpn(0));
        for v in 1..500u64 {
            s.walk(0, Vpn(v), nomad_types::SubBlockIdx(0), AccessKind::Read, v);
        }
        // Page 0 must still be cached: its frame was skipped.
        assert!(s.page_table.get(Vpn(0)).unwrap().cached());
        s.tlb_departed(0, Vpn(0));
        for v in 500..1200u64 {
            s.walk(0, Vpn(v), nomad_types::SubBlockIdx(0), AccessKind::Read, v);
        }
        assert!(
            !s.page_table.get(Vpn(0)).unwrap().cached(),
            "reclaimed after departure"
        );
    }
}
