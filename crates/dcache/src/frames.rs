//! Cache page descriptors and the circular free queue (paper Figs. 4–5).
//!
//! OS-managed schemes treat the on-package DRAM as an array of 4 KiB
//! *cache frames* managed FIFO: a DC tag-miss handler allocates frames
//! from the `head` of a circular queue, and a background eviction
//! daemon reclaims them from the `tail`. Each frame has a cache page
//! descriptor ([`Cpd`]) holding its validity, dirty-in-cache bit, the
//! original PFN (for PTE restoration) and a TLB directory used to skip
//! frames whose translations are TLB-resident — avoiding TLB
//! shootdowns entirely.
//!
//! The descriptor array is stored column-wise: `valid`, `dirty` and
//! "any TLB-directory bit set" are packed one bit per frame into `u64`
//! words, with the PFNs and full per-frame TLB-directory words in flat
//! arrays beside them. Head allocation probes and tail eviction scans
//! — which walk thousands of frames when the cache runs full or empty
//! — become word-at-a-time bit scans instead of per-frame struct loads.
//! [`Cpd`] survives as the by-value snapshot type the scans assemble on
//! demand.

use nomad_types::{Cfn, Pfn};
use serde::{Deserialize, Serialize};

/// Cache page descriptor (paper Fig. 4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cpd {
    /// V: frame holds a valid mapping.
    pub valid: bool,
    /// DC: dirty-in-cache — a writeback is required on eviction.
    pub dirty: bool,
    /// PFN of the physical frame mapped here (for reclamation).
    pub pfn: Pfn,
    /// TLB directory: bitmask of cores whose TLBs hold this frame's
    /// translation.
    pub tlb_dir: u64,
}

/// A frame reclaimed by the eviction daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictCandidate {
    /// Reclaimed cache frame.
    pub cfn: Cfn,
    /// Its descriptor at eviction time (PFN and dirty bit drive the
    /// PTE restoration and writeback).
    pub cpd: Cpd,
}

/// The CPD array plus circular free-queue head/tail (paper Fig. 5),
/// stored column-wise (see the module docs).
#[derive(Debug, Clone)]
pub struct CacheFrames {
    /// Packed validity, one bit per frame; padding bits stay clear.
    valid: Vec<u64>,
    /// Packed dirty-in-cache bits; meaningful only where `valid`.
    dirty: Vec<u64>,
    /// Packed "some TLB holds this translation" bits — the word-scan
    /// mirror of `tlb_dirs[i] != 0`.
    tlb_resident_bits: Vec<u64>,
    /// Full per-frame TLB-directory words.
    tlb_dirs: Vec<u64>,
    /// Mapped PFN per frame; meaningful only where `valid`.
    pfns: Vec<Pfn>,
    frames: usize,
    head: usize,
    tail: usize,
    num_free: usize,
}

#[inline]
fn bit_get(words: &[u64], i: usize) -> bool {
    words[i / 64] & (1u64 << (i % 64)) != 0
}

#[inline]
fn bit_set(words: &mut [u64], i: usize) {
    words[i / 64] |= 1u64 << (i % 64);
}

#[inline]
fn bit_clear(words: &mut [u64], i: usize) {
    words[i / 64] &= !(1u64 << (i % 64));
}

impl CacheFrames {
    /// A DRAM cache of `frames` 4 KiB frames, all free.
    ///
    /// # Panics
    ///
    /// Panics if `frames == 0`.
    pub fn new(frames: usize) -> Self {
        assert!(frames > 0, "cache must have at least one frame");
        let words = frames.div_ceil(64);
        CacheFrames {
            valid: vec![0; words],
            dirty: vec![0; words],
            tlb_resident_bits: vec![0; words],
            tlb_dirs: vec![0; frames],
            pfns: vec![Pfn(0); frames],
            frames,
            head: 0,
            tail: 0,
            num_free: frames,
        }
    }

    /// Mask of in-range frame bits for word `wi` (all ones except in a
    /// partial last word).
    #[inline]
    fn word_mask(&self, wi: usize) -> u64 {
        let rem = self.frames - wi * 64;
        if rem >= 64 {
            u64::MAX
        } else {
            (1u64 << rem) - 1
        }
    }

    /// Total frames.
    pub fn capacity(&self) -> usize {
        self.frames
    }

    /// Currently free frames.
    pub fn num_free(&self) -> usize {
        self.num_free
    }

    /// The descriptor of `cfn`, assembled from the packed columns.
    ///
    /// # Panics
    ///
    /// Panics if `cfn` is out of range.
    pub fn cpd(&self, cfn: Cfn) -> Cpd {
        let i = cfn.raw() as usize;
        assert!(i < self.frames, "cfn out of range");
        Cpd {
            valid: bit_get(&self.valid, i),
            dirty: bit_get(&self.dirty, i),
            pfn: self.pfns[i],
            tlb_dir: self.tlb_dirs[i],
        }
    }

    /// Allocate a frame for `pfn` from the head of the free queue
    /// (Algorithm 1, lines 2–10). Returns the frame and the number of
    /// occupied frames the head had to skip (each probe costs a CPD
    /// read on the handler's critical path). `None` when no frame is
    /// free.
    pub fn allocate(&mut self, pfn: Pfn) -> Option<(Cfn, usize)> {
        if self.num_free == 0 {
            return None;
        }
        let n = self.frames;
        let start = self.head;
        // First clear valid bit at or after `head`, wrapping: scan the
        // inverted valid words (in-range bits only). Guaranteed to
        // terminate because num_free > 0 means a clear bit exists.
        let idx = {
            let mut wi = start / 64;
            let mut w = !self.valid[wi] & self.word_mask(wi) & (u64::MAX << (start % 64));
            loop {
                if w != 0 {
                    break wi * 64 + w.trailing_zeros() as usize;
                }
                wi += 1;
                if wi == self.valid.len() {
                    wi = 0;
                }
                w = !self.valid[wi] & self.word_mask(wi);
            }
        };
        // Every frame between the old head and the allocated one was
        // occupied, so the probe count is the wrapped distance.
        let probes = if idx >= start {
            idx - start
        } else {
            idx + n - start
        };
        bit_set(&mut self.valid, idx);
        bit_clear(&mut self.dirty, idx);
        bit_clear(&mut self.tlb_resident_bits, idx);
        self.tlb_dirs[idx] = 0;
        self.pfns[idx] = pfn;
        self.head = if idx + 1 == n { 0 } else { idx + 1 };
        self.num_free -= 1;
        Some((Cfn(idx as u64), probes))
    }

    /// Reclaim up to `n` frames from the tail (Algorithm 2): frames
    /// whose translations are TLB-resident are *skipped* (they stay
    /// valid and the tail passes over them, avoiding shootdowns);
    /// already-free frames are passed over without consuming an
    /// iteration.
    pub fn evict_batch(&mut self, n: usize) -> Vec<EvictCandidate> {
        let mut out = Vec::new();
        self.evict_batch_into(n, &mut out);
        out
    }

    /// [`evict_batch`](CacheFrames::evict_batch) into a caller-owned
    /// buffer, so a per-tick eviction daemon can reuse one allocation.
    pub fn evict_batch_into(&mut self, n: usize, out: &mut Vec<EvictCandidate>) {
        self.evict_batch_inner(n, |_| false, false, out)
    }

    /// Like [`evict_batch`](CacheFrames::evict_batch), additionally
    /// skipping frames for which `busy` returns `true` (e.g. frames
    /// with an in-flight page copy traced by a PCSHR).
    pub fn evict_batch_filtered(
        &mut self,
        n: usize,
        busy: impl FnMut(Cfn) -> bool,
    ) -> Vec<EvictCandidate> {
        let mut out = Vec::new();
        self.evict_batch_inner(n, busy, false, &mut out);
        out
    }

    /// [`evict_batch_filtered`](CacheFrames::evict_batch_filtered) into
    /// a caller-owned buffer.
    pub fn evict_batch_filtered_into(
        &mut self,
        n: usize,
        busy: impl FnMut(Cfn) -> bool,
        out: &mut Vec<EvictCandidate>,
    ) {
        self.evict_batch_inner(n, busy, false, out)
    }

    /// Forced reclamation: evicts TLB-resident frames too (the caller
    /// must issue TLB shootdowns for them — check `cpd.tlb_dir` of the
    /// returned candidates). Frames with in-flight copies are still
    /// skipped. Last-resort path for when the DRAM cache is smaller
    /// than the combined TLB reach and shootdown avoidance would
    /// deadlock allocation.
    pub fn evict_batch_force(
        &mut self,
        n: usize,
        busy: impl FnMut(Cfn) -> bool,
    ) -> Vec<EvictCandidate> {
        let mut out = Vec::new();
        self.evict_batch_inner(n, busy, true, &mut out);
        out
    }

    /// [`evict_batch_force`](CacheFrames::evict_batch_force) into a
    /// caller-owned buffer.
    pub fn evict_batch_force_into(
        &mut self,
        n: usize,
        busy: impl FnMut(Cfn) -> bool,
        out: &mut Vec<EvictCandidate>,
    ) {
        self.evict_batch_inner(n, busy, true, out)
    }

    /// Distance from `from` (exclusive of nothing — `from` itself may
    /// match) to the next valid frame, wrapping; `None` when no frame
    /// is valid.
    fn next_valid_distance(&self, from: usize) -> Option<usize> {
        let n = self.frames;
        let mut wi = from / 64;
        let mut w = self.valid[wi] & (u64::MAX << (from % 64));
        let mut wrapped = false;
        loop {
            if w != 0 {
                let idx = wi * 64 + w.trailing_zeros() as usize;
                let d = if wrapped || idx >= from {
                    if idx >= from {
                        idx - from
                    } else {
                        idx + n - from
                    }
                } else {
                    idx - from
                };
                return Some(d);
            }
            wi += 1;
            if wi == self.valid.len() {
                if wrapped {
                    return None;
                }
                wi = 0;
                wrapped = true;
            }
            w = self.valid[wi];
            if wrapped && wi == from / 64 {
                // Final revisit of the start word: bits below `from`.
                w &= !(u64::MAX << (from % 64));
                if w == 0 {
                    return None;
                }
            }
        }
    }

    fn evict_batch_inner(
        &mut self,
        n: usize,
        mut busy: impl FnMut(Cfn) -> bool,
        force_tlb: bool,
        out: &mut Vec<EvictCandidate>,
    ) {
        let len = self.frames;
        let mut iterations = 0;
        let mut scanned = 0;
        while iterations < n && scanned < len {
            if !bit_get(&self.valid, self.tail) {
                // Fast-forward over free frames: the dense scan passed
                // each one without consuming an iteration. The jump
                // advances tail and the scan budget by the same count.
                let step = match self.next_valid_distance(self.tail) {
                    Some(d) => d.min(len - scanned),
                    None => len - scanned,
                };
                debug_assert!(step > 0);
                scanned += step;
                self.tail += step;
                if self.tail >= len {
                    self.tail -= len;
                }
                continue;
            }
            let idx = self.tail;
            scanned += 1;
            iterations += 1;
            self.tail = if idx + 1 == len { 0 } else { idx + 1 };
            let tlb_dir = self.tlb_dirs[idx];
            if (tlb_dir != 0 && !force_tlb) || busy(Cfn(idx as u64)) {
                // Translation still in some TLB (Algorithm 2 lines
                // 6–8), or a page copy is in flight: skip.
                continue;
            }
            let cpd = Cpd {
                valid: true,
                dirty: bit_get(&self.dirty, idx),
                pfn: self.pfns[idx],
                tlb_dir,
            };
            bit_clear(&mut self.valid, idx);
            bit_clear(&mut self.tlb_resident_bits, idx);
            self.tlb_dirs[idx] = 0;
            self.num_free += 1;
            out.push(EvictCandidate {
                cfn: Cfn(idx as u64),
                cpd,
            });
        }
    }

    /// Set the dirty-in-cache bit of `cfn` (on a write access).
    pub fn set_dirty(&mut self, cfn: Cfn) {
        bit_set(&mut self.dirty, cfn.raw() as usize);
    }

    /// Mark `core`'s TLBs as holding `cfn`'s translation.
    pub fn tlb_set(&mut self, cfn: Cfn, core: usize) {
        let i = cfn.raw() as usize;
        self.tlb_dirs[i] |= 1u64 << (core % 64);
        bit_set(&mut self.tlb_resident_bits, i);
    }

    /// Clear `core`'s TLB-directory bit for `cfn`.
    pub fn tlb_clear(&mut self, cfn: Cfn, core: usize) {
        let i = cfn.raw() as usize;
        self.tlb_dirs[i] &= !(1u64 << (core % 64));
        if self.tlb_dirs[i] == 0 {
            bit_clear(&mut self.tlb_resident_bits, i);
        }
    }

    /// Whether any core's TLB holds `cfn`'s translation.
    pub fn tlb_resident(&self, cfn: Cfn) -> bool {
        bit_get(&self.tlb_resident_bits, cfn.raw() as usize)
    }

    /// Occupied frames.
    pub fn occupancy(&self) -> usize {
        self.frames - self.num_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fifo_allocation_order() {
        let mut f = CacheFrames::new(4);
        let (a, p0) = f.allocate(Pfn(10)).unwrap();
        let (b, _) = f.allocate(Pfn(11)).unwrap();
        assert_eq!(a, Cfn(0));
        assert_eq!(b, Cfn(1));
        assert_eq!(p0, 0);
        assert_eq!(f.num_free(), 2);
        assert_eq!(f.cpd(a).pfn, Pfn(10));
    }

    #[test]
    fn eviction_is_fifo() {
        let mut f = CacheFrames::new(4);
        for i in 0..4 {
            f.allocate(Pfn(i)).unwrap();
        }
        assert!(f.allocate(Pfn(99)).is_none(), "cache full");
        let evicted = f.evict_batch(2);
        assert_eq!(evicted.len(), 2);
        assert_eq!(evicted[0].cfn, Cfn(0));
        assert_eq!(evicted[0].cpd.pfn, Pfn(0));
        assert_eq!(evicted[1].cfn, Cfn(1));
        assert_eq!(f.num_free(), 2);
        // Next allocation reuses the reclaimed frames in order.
        let (c, _) = f.allocate(Pfn(99)).unwrap();
        assert_eq!(c, Cfn(0));
    }

    #[test]
    fn tlb_resident_frames_are_skipped() {
        let mut f = CacheFrames::new(4);
        for i in 0..4 {
            f.allocate(Pfn(i)).unwrap();
        }
        f.tlb_set(Cfn(0), 2);
        let evicted = f.evict_batch(2);
        // Frame 0 skipped (consumes an iteration), frame 1 evicted.
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].cfn, Cfn(1));
        assert!(f.cpd(Cfn(0)).valid, "skipped frame stays valid");
        // Clearing the directory makes it reclaimable on a later pass.
        f.tlb_clear(Cfn(0), 2);
        let evicted = f.evict_batch(4);
        assert!(evicted.iter().any(|e| e.cfn == Cfn(0)));
    }

    #[test]
    fn allocation_skips_survivor_frames() {
        let mut f = CacheFrames::new(4);
        for i in 0..4 {
            f.allocate(Pfn(i)).unwrap();
        }
        f.tlb_set(Cfn(0), 0);
        f.evict_batch(4); // evicts 1,2,3; skips 0
        assert_eq!(f.num_free(), 3);
        // Head is at 0 (wrapped): allocation must skip the valid frame 0.
        let (c, probes) = f.allocate(Pfn(50)).unwrap();
        assert_eq!(c, Cfn(1));
        assert_eq!(probes, 1, "one occupied frame probed");
    }

    #[test]
    fn dirty_bit_round_trip() {
        let mut f = CacheFrames::new(2);
        let (a, _) = f.allocate(Pfn(1)).unwrap();
        assert!(!f.cpd(a).dirty);
        f.set_dirty(a);
        assert!(f.cpd(a).dirty);
        let e = f.evict_batch(1);
        assert!(e[0].cpd.dirty);
    }

    #[test]
    fn evict_on_empty_cache_returns_nothing() {
        let mut f = CacheFrames::new(4);
        assert!(f.evict_batch(4).is_empty());
    }

    #[test]
    fn evict_into_reuses_buffer_and_appends() {
        let mut f = CacheFrames::new(8);
        for i in 0..8 {
            f.allocate(Pfn(i)).unwrap();
        }
        let mut scratch = Vec::new();
        f.evict_batch_into(2, &mut scratch);
        assert_eq!(scratch.len(), 2);
        scratch.clear();
        f.evict_batch_into(3, &mut scratch);
        assert_eq!(scratch.len(), 3);
        assert_eq!(scratch[0].cfn, Cfn(2), "tail resumed where it left off");
    }

    /// The word-scan allocate/evict must agree with a naive per-frame
    /// model across odd sizes (partial last words) and many-word files.
    #[test]
    fn arena_matches_naive_model_across_sizes() {
        #[derive(Clone)]
        struct Naive {
            cpds: Vec<Cpd>,
            head: usize,
            tail: usize,
            num_free: usize,
        }
        impl Naive {
            fn allocate(&mut self, pfn: Pfn) -> Option<(Cfn, usize)> {
                if self.num_free == 0 {
                    return None;
                }
                let n = self.cpds.len();
                let mut probes = 0;
                while self.cpds[self.head].valid {
                    self.head = (self.head + 1) % n;
                    probes += 1;
                }
                let cfn = Cfn(self.head as u64);
                self.cpds[self.head] = Cpd {
                    valid: true,
                    dirty: false,
                    pfn,
                    tlb_dir: 0,
                };
                self.head = (self.head + 1) % n;
                self.num_free -= 1;
                Some((cfn, probes))
            }
            fn evict_batch(&mut self, n: usize, force_tlb: bool) -> Vec<EvictCandidate> {
                let len = self.cpds.len();
                let mut out = Vec::new();
                let (mut iterations, mut scanned) = (0, 0);
                while iterations < n && scanned < len {
                    let idx = self.tail;
                    scanned += 1;
                    let cpd = self.cpds[idx];
                    if !cpd.valid {
                        self.tail = (self.tail + 1) % len;
                        continue;
                    }
                    iterations += 1;
                    if cpd.tlb_dir != 0 && !force_tlb {
                        self.tail = (self.tail + 1) % len;
                        continue;
                    }
                    self.cpds[idx].valid = false;
                    self.cpds[idx].tlb_dir = 0;
                    self.num_free += 1;
                    self.tail = (self.tail + 1) % len;
                    out.push(EvictCandidate {
                        cfn: Cfn(idx as u64),
                        cpd,
                    });
                }
                out
            }
        }

        let mut state = 7u64;
        let mut rng = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for frames in [1usize, 3, 64, 65, 130] {
            let mut arena = CacheFrames::new(frames);
            let mut naive = Naive {
                cpds: vec![Cpd::default(); frames],
                head: 0,
                tail: 0,
                num_free: frames,
            };
            for op in 0..2000 {
                match rng() % 5 {
                    0..=2 => {
                        let got = arena.allocate(Pfn(op));
                        let want = naive.allocate(Pfn(op));
                        assert_eq!(got, want, "allocate diverged at op {op}");
                        if let Some((cfn, _)) = got {
                            if rng() % 3 == 0 {
                                let core = (rng() % 4) as usize;
                                arena.tlb_set(cfn, core);
                                naive.cpds[cfn.raw() as usize].tlb_dir |= 1 << core;
                            }
                            if rng() % 4 == 0 {
                                arena.set_dirty(cfn);
                                naive.cpds[cfn.raw() as usize].dirty = true;
                            }
                        }
                    }
                    3 => {
                        let batch = (rng() % 4 + 1) as usize;
                        let force = rng() % 8 == 0;
                        let got = if force {
                            arena.evict_batch_force(batch, |_| false)
                        } else {
                            arena.evict_batch(batch)
                        };
                        let want = naive.evict_batch(batch, force);
                        assert_eq!(got, want, "evict diverged at op {op}");
                        assert_eq!(arena.num_free(), naive.num_free);
                    }
                    _ => {
                        let cfn = Cfn(rng() % frames as u64);
                        let core = (rng() % 4) as usize;
                        if rng() % 2 == 0 {
                            arena.tlb_clear(cfn, core);
                            naive.cpds[cfn.raw() as usize].tlb_dir &= !(1 << core);
                        }
                        assert_eq!(
                            arena.tlb_resident(cfn),
                            naive.cpds[cfn.raw() as usize].tlb_dir != 0
                        );
                    }
                }
                let probe = Cfn(rng() % frames as u64);
                assert_eq!(
                    arena.cpd(probe),
                    naive.cpds[probe.raw() as usize],
                    "cpd({probe:?}) diverged at op {op}"
                );
            }
        }
    }

    proptest! {
        /// num_free + occupancy is invariant, allocations never return
        /// a valid-marked frame, and eviction counts balance.
        #[test]
        fn prop_free_accounting(ops in proptest::collection::vec(0u8..3, 1..200)) {
            let mut f = CacheFrames::new(16);
            let mut allocated = 0usize;
            for op in ops {
                match op {
                    0 => {
                        if let Some((cfn, _)) = f.allocate(Pfn(allocated as u64)) {
                            allocated += 1;
                            prop_assert!(f.cpd(cfn).valid);
                        }
                    }
                    1 => {
                        let evicted = f.evict_batch(3);
                        allocated -= evicted.len();
                    }
                    _ => {
                        let evicted = f.evict_batch(1);
                        allocated -= evicted.len();
                    }
                }
                prop_assert_eq!(f.occupancy(), allocated);
                prop_assert_eq!(f.num_free() + allocated, 16);
            }
        }
    }
}
