//! Cache page descriptors and the circular free queue (paper Figs. 4–5).
//!
//! OS-managed schemes treat the on-package DRAM as an array of 4 KiB
//! *cache frames* managed FIFO: a DC tag-miss handler allocates frames
//! from the `head` of a circular queue, and a background eviction
//! daemon reclaims them from the `tail`. Each frame has a cache page
//! descriptor ([`Cpd`]) holding its validity, dirty-in-cache bit, the
//! original PFN (for PTE restoration) and a TLB directory used to skip
//! frames whose translations are TLB-resident — avoiding TLB
//! shootdowns entirely.

use nomad_types::{Cfn, Pfn};
use serde::{Deserialize, Serialize};

/// Cache page descriptor (paper Fig. 4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cpd {
    /// V: frame holds a valid mapping.
    pub valid: bool,
    /// DC: dirty-in-cache — a writeback is required on eviction.
    pub dirty: bool,
    /// PFN of the physical frame mapped here (for reclamation).
    pub pfn: Pfn,
    /// TLB directory: bitmask of cores whose TLBs hold this frame's
    /// translation.
    pub tlb_dir: u64,
}

/// A frame reclaimed by the eviction daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictCandidate {
    /// Reclaimed cache frame.
    pub cfn: Cfn,
    /// Its descriptor at eviction time (PFN and dirty bit drive the
    /// PTE restoration and writeback).
    pub cpd: Cpd,
}

/// The CPD array plus circular free-queue head/tail (paper Fig. 5).
#[derive(Debug, Clone)]
pub struct CacheFrames {
    cpds: Vec<Cpd>,
    head: usize,
    tail: usize,
    num_free: usize,
}

impl CacheFrames {
    /// A DRAM cache of `frames` 4 KiB frames, all free.
    ///
    /// # Panics
    ///
    /// Panics if `frames == 0`.
    pub fn new(frames: usize) -> Self {
        assert!(frames > 0, "cache must have at least one frame");
        CacheFrames {
            cpds: vec![Cpd::default(); frames],
            head: 0,
            tail: 0,
            num_free: frames,
        }
    }

    /// Total frames.
    pub fn capacity(&self) -> usize {
        self.cpds.len()
    }

    /// Currently free frames.
    pub fn num_free(&self) -> usize {
        self.num_free
    }

    /// The descriptor of `cfn`.
    ///
    /// # Panics
    ///
    /// Panics if `cfn` is out of range.
    pub fn cpd(&self, cfn: Cfn) -> &Cpd {
        &self.cpds[cfn.raw() as usize]
    }

    /// Allocate a frame for `pfn` from the head of the free queue
    /// (Algorithm 1, lines 2–10). Returns the frame and the number of
    /// occupied frames the head had to skip (each probe costs a CPD
    /// read on the handler's critical path). `None` when no frame is
    /// free.
    pub fn allocate(&mut self, pfn: Pfn) -> Option<(Cfn, usize)> {
        if self.num_free == 0 {
            return None;
        }
        let n = self.cpds.len();
        let mut probes = 0;
        // Bounded by construction: num_free > 0 guarantees an invalid
        // frame exists.
        while self.cpds[self.head].valid {
            self.head = (self.head + 1) % n;
            probes += 1;
        }
        let cfn = Cfn(self.head as u64);
        self.cpds[self.head] = Cpd {
            valid: true,
            dirty: false,
            pfn,
            tlb_dir: 0,
        };
        self.head = (self.head + 1) % n;
        self.num_free -= 1;
        Some((cfn, probes))
    }

    /// Reclaim up to `n` frames from the tail (Algorithm 2): frames
    /// whose translations are TLB-resident are *skipped* (they stay
    /// valid and the tail passes over them, avoiding shootdowns);
    /// already-free frames are passed over without consuming an
    /// iteration.
    pub fn evict_batch(&mut self, n: usize) -> Vec<EvictCandidate> {
        self.evict_batch_filtered(n, |_| false)
    }

    /// Like [`evict_batch`](CacheFrames::evict_batch), additionally
    /// skipping frames for which `busy` returns `true` (e.g. frames
    /// with an in-flight page copy traced by a PCSHR).
    pub fn evict_batch_filtered(
        &mut self,
        n: usize,
        busy: impl FnMut(Cfn) -> bool,
    ) -> Vec<EvictCandidate> {
        self.evict_batch_inner(n, busy, false)
    }

    /// Forced reclamation: evicts TLB-resident frames too (the caller
    /// must issue TLB shootdowns for them — check `cpd.tlb_dir` of the
    /// returned candidates). Frames with in-flight copies are still
    /// skipped. Last-resort path for when the DRAM cache is smaller
    /// than the combined TLB reach and shootdown avoidance would
    /// deadlock allocation.
    pub fn evict_batch_force(
        &mut self,
        n: usize,
        busy: impl FnMut(Cfn) -> bool,
    ) -> Vec<EvictCandidate> {
        self.evict_batch_inner(n, busy, true)
    }

    fn evict_batch_inner(
        &mut self,
        n: usize,
        mut busy: impl FnMut(Cfn) -> bool,
        force_tlb: bool,
    ) -> Vec<EvictCandidate> {
        let len = self.cpds.len();
        let mut out = Vec::new();
        let mut iterations = 0;
        let mut scanned = 0;
        while iterations < n && scanned < len {
            let idx = self.tail;
            scanned += 1;
            let cpd = self.cpds[idx];
            if !cpd.valid {
                self.tail = (self.tail + 1) % len;
                continue;
            }
            iterations += 1;
            if (cpd.tlb_dir != 0 && !force_tlb) || busy(Cfn(idx as u64)) {
                // Translation still in some TLB (Algorithm 2 lines
                // 6–8), or a page copy is in flight: skip.
                self.tail = (self.tail + 1) % len;
                continue;
            }
            self.cpds[idx].valid = false;
            self.cpds[idx].tlb_dir = 0;
            self.num_free += 1;
            self.tail = (self.tail + 1) % len;
            out.push(EvictCandidate {
                cfn: Cfn(idx as u64),
                cpd,
            });
        }
        out
    }

    /// Set the dirty-in-cache bit of `cfn` (on a write access).
    pub fn set_dirty(&mut self, cfn: Cfn) {
        self.cpds[cfn.raw() as usize].dirty = true;
    }

    /// Mark `core`'s TLBs as holding `cfn`'s translation.
    pub fn tlb_set(&mut self, cfn: Cfn, core: usize) {
        self.cpds[cfn.raw() as usize].tlb_dir |= 1u64 << (core % 64);
    }

    /// Clear `core`'s TLB-directory bit for `cfn`.
    pub fn tlb_clear(&mut self, cfn: Cfn, core: usize) {
        self.cpds[cfn.raw() as usize].tlb_dir &= !(1u64 << (core % 64));
    }

    /// Whether any core's TLB holds `cfn`'s translation.
    pub fn tlb_resident(&self, cfn: Cfn) -> bool {
        self.cpds[cfn.raw() as usize].tlb_dir != 0
    }

    /// Occupied frames.
    pub fn occupancy(&self) -> usize {
        self.cpds.len() - self.num_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fifo_allocation_order() {
        let mut f = CacheFrames::new(4);
        let (a, p0) = f.allocate(Pfn(10)).unwrap();
        let (b, _) = f.allocate(Pfn(11)).unwrap();
        assert_eq!(a, Cfn(0));
        assert_eq!(b, Cfn(1));
        assert_eq!(p0, 0);
        assert_eq!(f.num_free(), 2);
        assert_eq!(f.cpd(a).pfn, Pfn(10));
    }

    #[test]
    fn eviction_is_fifo() {
        let mut f = CacheFrames::new(4);
        for i in 0..4 {
            f.allocate(Pfn(i)).unwrap();
        }
        assert!(f.allocate(Pfn(99)).is_none(), "cache full");
        let evicted = f.evict_batch(2);
        assert_eq!(evicted.len(), 2);
        assert_eq!(evicted[0].cfn, Cfn(0));
        assert_eq!(evicted[0].cpd.pfn, Pfn(0));
        assert_eq!(evicted[1].cfn, Cfn(1));
        assert_eq!(f.num_free(), 2);
        // Next allocation reuses the reclaimed frames in order.
        let (c, _) = f.allocate(Pfn(99)).unwrap();
        assert_eq!(c, Cfn(0));
    }

    #[test]
    fn tlb_resident_frames_are_skipped() {
        let mut f = CacheFrames::new(4);
        for i in 0..4 {
            f.allocate(Pfn(i)).unwrap();
        }
        f.tlb_set(Cfn(0), 2);
        let evicted = f.evict_batch(2);
        // Frame 0 skipped (consumes an iteration), frame 1 evicted.
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].cfn, Cfn(1));
        assert!(f.cpd(Cfn(0)).valid, "skipped frame stays valid");
        // Clearing the directory makes it reclaimable on a later pass.
        f.tlb_clear(Cfn(0), 2);
        let evicted = f.evict_batch(4);
        assert!(evicted.iter().any(|e| e.cfn == Cfn(0)));
    }

    #[test]
    fn allocation_skips_survivor_frames() {
        let mut f = CacheFrames::new(4);
        for i in 0..4 {
            f.allocate(Pfn(i)).unwrap();
        }
        f.tlb_set(Cfn(0), 0);
        f.evict_batch(4); // evicts 1,2,3; skips 0
        assert_eq!(f.num_free(), 3);
        // Head is at 0 (wrapped): allocation must skip the valid frame 0.
        let (c, probes) = f.allocate(Pfn(50)).unwrap();
        assert_eq!(c, Cfn(1));
        assert_eq!(probes, 1, "one occupied frame probed");
    }

    #[test]
    fn dirty_bit_round_trip() {
        let mut f = CacheFrames::new(2);
        let (a, _) = f.allocate(Pfn(1)).unwrap();
        assert!(!f.cpd(a).dirty);
        f.set_dirty(a);
        assert!(f.cpd(a).dirty);
        let e = f.evict_batch(1);
        assert!(e[0].cpd.dirty);
    }

    #[test]
    fn evict_on_empty_cache_returns_nothing() {
        let mut f = CacheFrames::new(4);
        assert!(f.evict_batch(4).is_empty());
    }

    proptest! {
        /// num_free + occupancy is invariant, allocations never return
        /// a valid-marked frame, and eviction counts balance.
        #[test]
        fn prop_free_accounting(ops in proptest::collection::vec(0u8..3, 1..200)) {
            let mut f = CacheFrames::new(16);
            let mut allocated = 0usize;
            for op in ops {
                match op {
                    0 => {
                        if let Some((cfn, _)) = f.allocate(Pfn(allocated as u64)) {
                            allocated += 1;
                            prop_assert!(f.cpd(cfn).valid);
                        }
                    }
                    1 => {
                        let evicted = f.evict_batch(3);
                        allocated -= evicted.len();
                    }
                    _ => {
                        let evicted = f.evict_batch(1);
                        allocated -= evicted.len();
                    }
                }
                prop_assert_eq!(f.occupancy(), allocated);
                prop_assert_eq!(f.num_free() + allocated, 16);
            }
        }
    }
}
