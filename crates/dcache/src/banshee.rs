//! Banshee: a page-granular DRAM cache with **TLB-resident tag
//! tracking** and a **bandwidth-aware, frequency-based replacement
//! policy** (PAPERS.md: "Banshee: Bandwidth-Efficient DRAM Caching via
//! Software/Hardware Cooperation").
//!
//! Characteristics reproduced:
//!
//! * page-granularity caching with the mapping kept in the page
//!   table / TLB (like the OS-managed schemes, translation resolves the
//!   DC location for free — no per-access tag probes);
//! * **sampled frequency counters**: only every `sample_rate`-th access
//!   updates counters, keeping tracking cheap;
//! * **admission filtering**: a missing page is cached only once its
//!   sampled frequency beats the set victim's frequency by
//!   `admit_threshold`, so low-reuse pages never spend fill bandwidth —
//!   the bandwidth-aware gate that is Banshee's signature;
//! * **lazy tag-table writeback**: mapping updates are buffered and
//!   flushed to the in-memory tag table in batches of
//!   `tag_buffer_entries` small posted writes, instead of per-miss
//!   metadata traffic.
//!
//! Divergence from NOMAD: replacement is frequency-gated rather than
//! FIFO-with-TLB-skip, fills are decided by a probabilistic filter
//! rather than performed on every tag miss, and pages keep being served
//! from off-package memory until their (lazily installed) mapping
//! lands — there is no tag-data decoupled in-transfer window.
#![warn(missing_docs)]

use crate::demand::DemandPath;
use crate::scheme::{CacheFlush, DcAccessReq, DcScheme, SchemeEvents, WalkOutcome};
use crate::stats::SchemeStats;
use nomad_cache::{FrameKind, PageTable, TlbEntry};
use nomad_dram::{Dram, DramRequest, Probe};
use nomad_types::{
    AccessKind, Cfn, CoreId, Cycle, MemResp, Pfn, ReqId, TrafficClass, Vpn, BLOCK_SIZE, PAGE_SIZE,
    SUB_BLOCKS_PER_PAGE,
};
use std::collections::{HashMap, VecDeque};

/// Banshee configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BansheeConfig {
    /// DRAM-cache data capacity in bytes.
    pub capacity_bytes: u64,
    /// Set associativity of the page cache.
    pub ways: usize,
    /// Sample one in `sample_rate` accesses for frequency tracking.
    pub sample_rate: u64,
    /// A candidate page is admitted only when its sampled frequency
    /// reaches the victim's frequency plus this margin.
    pub admit_threshold: u32,
    /// Buffered tag-table updates flushed together (lazy writeback).
    pub tag_buffer_entries: usize,
}

impl BansheeConfig {
    /// Paper-style Banshee over a DRAM cache of `capacity_bytes`.
    pub fn paper(capacity_bytes: u64) -> Self {
        BansheeConfig {
            capacity_bytes,
            ways: 4,
            sample_rate: 4,
            admit_threshold: 1,
            tag_buffer_entries: 32,
        }
    }
}

/// Token spaces for fill-engine traffic (demand traffic goes through
/// tagged [`DemandPath`]s).
const TOK_DEMAND: u64 = 1 << 56;
const TOK_FILL: u64 = 2 << 56;
const TOK_WB: u64 = 3 << 56;
const TOK_MASK: u64 = 0xff << 56;

/// Off-package byte address of the in-memory tag table entry for a set.
const TAG_TABLE_BASE: u64 = 1 << 40;

/// One way of the page cache.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    pfn: Pfn,
    valid: bool,
    dirty: bool,
    /// Sampled access-frequency counter (the replacement metric).
    freq: u32,
    /// Cores whose TLB holds a translation into this frame.
    tlb: u64,
}

/// An in-flight page fill (and the victim writeback it displaced).
#[derive(Debug)]
struct Fill {
    pfn: Pfn,
    slot: u64,
    /// Frequency the page is installed with (its candidate count).
    freq: u32,
    started: Cycle,
    /// Next off-package block to request (0..64).
    next_block: u64,
    /// Completed fill-block reads.
    fetched: u64,
    /// Next victim block to read out of HBM (64 when no writeback).
    wb_next: u64,
    /// Completed victim read-outs.
    wb_done: u64,
    wb_total: u64,
    victim_pfn: Pfn,
}

/// The Banshee page cache.
#[derive(Debug)]
pub struct Banshee {
    cfg: BansheeConfig,
    page_table: PageTable,
    slots: Vec<Slot>,
    num_sets: u64,
    free_slots: u64,
    hbm_demand: DemandPath,
    ddr_demand: DemandPath,
    /// Global access counter driving the sampling clock.
    access_count: u64,
    /// Sampled per-page candidate frequency (pages not yet cached).
    cand_freq: HashMap<u64, u32>,
    fills: Vec<Option<Fill>>,
    /// Fill-engine requests awaiting device room.
    pending_hbm: VecDeque<DramRequest>,
    pending_ddr: VecDeque<DramRequest>,
    /// Buffered tag-table updates not yet written to memory.
    tag_buffer_occupancy: usize,
    pending_flush: Vec<u64>,
    pending_shootdown: Vec<Vpn>,
    stats: SchemeStats,
    queue_limit: usize,
    scratch: Vec<nomad_dram::DramCompletion>,
}

impl Banshee {
    /// Build a Banshee cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry yields zero sets.
    pub fn new(cfg: BansheeConfig) -> Self {
        let frames = (cfg.capacity_bytes / PAGE_SIZE).max(cfg.ways as u64);
        let num_sets = (frames / cfg.ways as u64).max(1);
        let slots = num_sets * cfg.ways as u64;
        assert!(num_sets >= 1, "geometry too small");
        Banshee {
            page_table: PageTable::new(),
            slots: vec![Slot::default(); slots as usize],
            num_sets,
            free_slots: slots,
            hbm_demand: DemandPath::with_tag(TOK_DEMAND),
            ddr_demand: DemandPath::with_tag(TOK_DEMAND),
            access_count: 0,
            cand_freq: HashMap::new(),
            fills: (0..4).map(|_| None).collect(),
            pending_hbm: VecDeque::new(),
            pending_ddr: VecDeque::new(),
            tag_buffer_occupancy: 0,
            pending_flush: Vec::new(),
            pending_shootdown: Vec::new(),
            stats: SchemeStats::default(),
            queue_limit: 64,
            scratch: Vec::new(),
            cfg,
        }
    }

    /// The scheme's page table.
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }

    fn set_of(&self, pfn: Pfn) -> u64 {
        pfn.raw() % self.num_sets
    }

    fn fill_in_flight(&self, pfn: Pfn, set: u64) -> bool {
        self.fills.iter().flatten().any(|f| {
            f.pfn == pfn
                || (f.slot >= set * self.cfg.ways as u64
                    && f.slot < (set + 1) * self.cfg.ways as u64)
        })
    }

    /// Sampled tag-miss handling: bump the candidate counter and admit
    /// the page if it now beats the set's coldest resident.
    fn consider_admission(&mut self, pfn: Pfn, now: Cycle) {
        let set = self.set_of(pfn);
        if self.fill_in_flight(pfn, set) {
            return;
        }
        let cand = self
            .cand_freq
            .entry(pfn.raw())
            .and_modify(|c| *c = c.saturating_add(1))
            .or_insert(1);
        let cand = *cand;
        // Deterministic aging: a bounded candidate table, wholesale
        // reset when full (Banshee periodically decays its counters).
        if self.cand_freq.len() > 8192 {
            self.cand_freq.clear();
        }

        let base = (set * self.cfg.ways as u64) as usize;
        let ways = &self.slots[base..base + self.cfg.ways];
        let (way, admit) = match ways.iter().position(|s| !s.valid) {
            Some(w) => (w, true),
            None => {
                // Victim = coldest way (ties: lowest index).
                let mut victim = 0;
                for (i, s) in ways.iter().enumerate() {
                    if s.freq < ways[victim].freq {
                        victim = i;
                    }
                }
                // The bandwidth-aware gate: only replace when the
                // candidate is provably hotter, otherwise the fill
                // bandwidth is better spent elsewhere.
                (
                    victim,
                    cand >= ways[victim].freq.saturating_add(self.cfg.admit_threshold),
                )
            }
        };
        if !admit {
            self.stats.policy_bypasses.inc();
            return;
        }
        let Some(idx) = self.fills.iter().position(Option::is_none) else {
            // Fill engine saturated: drop the attempt, it will retry on
            // a later sample.
            self.stats.pcshr_full_events.inc();
            return;
        };
        let slot = base as u64 + way as u64;
        let victim = self.slots[slot as usize];
        let mut wb_total = 0;
        if victim.valid {
            if victim.tlb != 0 {
                for &vpn in self.page_table.reverse_map(victim.pfn) {
                    self.pending_shootdown.push(Vpn(vpn));
                }
            }
            self.page_table.uncache_all(victim.pfn);
            self.pending_flush.push(slot);
            self.stats.evictions.inc();
            if victim.dirty {
                wb_total = SUB_BLOCKS_PER_PAGE;
                self.stats.writebacks.inc();
                self.stats.writeback_bytes.add(PAGE_SIZE);
            }
        } else {
            self.free_slots -= 1;
        }
        self.slots[slot as usize] = Slot::default();
        self.cand_freq.remove(&pfn.raw());
        self.stats.tag_misses.inc();
        self.fills[idx] = Some(Fill {
            pfn,
            slot,
            freq: cand,
            started: now,
            next_block: 0,
            fetched: 0,
            wb_next: 0,
            wb_done: 0,
            wb_total,
            victim_pfn: victim.pfn,
        });
    }

    /// Issue the next batch of fill/writeback block transfers. Victim
    /// read-out is fully issued before the fill overwrites the frame.
    fn pump_fills(&mut self) {
        for idx in 0..self.fills.len() {
            let Some(f) = self.fills[idx].as_mut() else {
                continue;
            };
            let mut quota = 4u64;
            while f.wb_next < f.wb_total && quota > 0 {
                let block = f.wb_next;
                f.wb_next += 1;
                quota -= 1;
                self.pending_hbm.push_back(DramRequest {
                    token: ReqId(TOK_WB | ((idx as u64) << 8) | block),
                    addr: f.slot * PAGE_SIZE + block * BLOCK_SIZE,
                    kind: AccessKind::Read,
                    class: TrafficClass::Writeback,
                    wants_completion: true,
                    probe: Probe::Data,
                });
            }
            if f.wb_next < f.wb_total {
                continue;
            }
            while f.next_block < SUB_BLOCKS_PER_PAGE && quota > 0 {
                let block = f.next_block;
                f.next_block += 1;
                quota -= 1;
                self.pending_ddr.push_back(DramRequest {
                    token: ReqId(TOK_FILL | ((idx as u64) << 8) | block),
                    addr: f.pfn.base().raw() + block * BLOCK_SIZE,
                    kind: AccessKind::Read,
                    class: TrafficClass::Fill,
                    wants_completion: true,
                    probe: Probe::Data,
                });
            }
        }
    }

    fn on_fill_block(&mut self, idx: usize, _block: u64, now: Cycle) {
        let (slot, block_addr);
        {
            let Some(f) = self.fills[idx].as_mut() else {
                return;
            };
            f.fetched += 1;
            slot = f.slot;
            block_addr = slot * PAGE_SIZE + _block * BLOCK_SIZE;
        }
        self.stats.fill_bytes.add(BLOCK_SIZE);
        self.pending_hbm.push_back(DramRequest {
            token: ReqId(0),
            addr: block_addr,
            kind: AccessKind::Write,
            class: TrafficClass::Fill,
            wants_completion: false,
            probe: Probe::Data,
        });
        self.try_retire(idx, now);
    }

    fn on_wb_block(&mut self, idx: usize, block: u64, now: Cycle) {
        let victim_addr;
        {
            let Some(f) = self.fills[idx].as_mut() else {
                return;
            };
            f.wb_done += 1;
            victim_addr = f.victim_pfn.base().raw() + block * BLOCK_SIZE;
        }
        self.pending_ddr.push_back(DramRequest {
            token: ReqId(0),
            addr: victim_addr,
            kind: AccessKind::Write,
            class: TrafficClass::Writeback,
            wants_completion: false,
            probe: Probe::Data,
        });
        self.try_retire(idx, now);
    }

    fn try_retire(&mut self, idx: usize, now: Cycle) {
        let done = match self.fills[idx].as_ref() {
            Some(f) => f.fetched == SUB_BLOCKS_PER_PAGE && f.wb_done == f.wb_total,
            None => false,
        };
        if !done {
            return;
        }
        let f = self.fills[idx].take().expect("checked");
        self.slots[f.slot as usize] = Slot {
            pfn: f.pfn,
            valid: true,
            dirty: false,
            freq: f.freq,
            tlb: 0,
        };
        self.page_table.cache_all(f.pfn, Cfn(f.slot));
        self.stats.fills.inc();
        self.stats
            .tag_mgmt_latency
            .record(now.saturating_sub(f.started));
        // Lazy tag-table writeback: buffer the mapping update; flush the
        // whole buffer as a batch of small posted writes once full.
        self.tag_buffer_occupancy += 1;
        if self.tag_buffer_occupancy >= self.cfg.tag_buffer_entries {
            for i in 0..self.tag_buffer_occupancy as u64 {
                self.pending_ddr.push_back(DramRequest {
                    token: ReqId(0),
                    addr: TAG_TABLE_BASE + i * 8,
                    kind: AccessKind::Write,
                    class: TrafficClass::Metadata,
                    wants_completion: false,
                    probe: Probe::TagOnly,
                });
            }
            self.tag_buffer_occupancy = 0;
        }
    }
}

impl DcScheme for Banshee {
    fn name(&self) -> &'static str {
        "Banshee"
    }

    fn walk(
        &mut self,
        _core: CoreId,
        vpn: Vpn,
        _sub: nomad_types::SubBlockIdx,
        kind: AccessKind,
        now: Cycle,
    ) -> WalkOutcome {
        let pte = *self.page_table.pte_mut(vpn);
        if !pte.noncacheable {
            self.access_count += 1;
            let sampled = self.access_count.is_multiple_of(self.cfg.sample_rate);
            if sampled {
                match pte.frame {
                    FrameKind::Cache(cfn) => {
                        // Sampled hit: reward the resident page.
                        let s = &mut self.slots[cfn.raw() as usize];
                        s.freq = s.freq.saturating_add(1);
                    }
                    FrameKind::Phys(pfn) if pte.tag_miss() => {
                        self.consider_admission(pfn, now);
                    }
                    FrameKind::Phys(_) => {}
                }
            }
        }
        // Walks never block: until a fill retires and its mapping is
        // installed, the page is simply served from off-package memory.
        let pte = self.page_table.pte_mut(vpn);
        if kind.is_write() {
            pte.dirty = true;
            if let FrameKind::Cache(cfn) = pte.frame {
                self.slots[cfn.raw() as usize].dirty = true;
            }
        }
        WalkOutcome::Ready {
            entry: TlbEntry {
                vpn,
                frame: pte.frame,
                noncacheable: pte.noncacheable,
            },
        }
    }

    fn prewarm(&mut self, _core: CoreId, vpn: Vpn, dirty: bool) {
        let pte = *self.page_table.pte_mut(vpn);
        if !pte.tag_miss() {
            return;
        }
        let FrameKind::Phys(pfn) = pte.frame else {
            return;
        };
        let set = self.set_of(pfn);
        let base = (set * self.cfg.ways as u64) as usize;
        let Some(way) = self.slots[base..base + self.cfg.ways]
            .iter()
            .position(|s| !s.valid)
        else {
            return;
        };
        let slot = base as u64 + way as u64;
        self.slots[slot as usize] = Slot {
            pfn,
            valid: true,
            dirty,
            freq: 1,
            tlb: 0,
        };
        self.free_slots -= 1;
        self.page_table.cache_all(pfn, Cfn(slot));
    }

    fn free_frames(&self) -> Option<u64> {
        Some(self.free_slots)
    }

    fn can_accept(&self) -> bool {
        self.hbm_demand.has_room(self.queue_limit) && self.ddr_demand.has_room(self.queue_limit)
    }

    fn access(&mut self, req: DcAccessReq, now: Cycle) {
        let class = if req.kind.is_write() {
            self.stats.demand_writes.inc();
            TrafficClass::DemandWrite
        } else {
            self.stats.demand_reads.inc();
            TrafficClass::DemandRead
        };
        match req.target {
            nomad_types::MemTarget::DramCache => {
                self.stats.dc_data_hits.inc();
                self.hbm_demand.submit(req, req.addr.base(), class, now);
            }
            nomad_types::MemTarget::OffPackage => {
                self.stats.offpkg_demand.inc();
                self.ddr_demand.submit(req, req.addr.base(), class, now);
            }
        }
    }

    fn tick(
        &mut self,
        now: Cycle,
        hbm: &mut Dram,
        ddr: &mut Dram,
        flush: &mut dyn CacheFlush,
        events: &mut SchemeEvents,
    ) {
        for page in self.pending_flush.drain(..) {
            flush.flush_dc_page(page);
        }
        events.shootdowns.append(&mut self.pending_shootdown);

        self.pump_fills();
        while let Some(r) = self.pending_hbm.pop_front() {
            if let Err(back) = hbm.try_push(r) {
                self.pending_hbm.push_front(back);
                break;
            }
        }
        while let Some(r) = self.pending_ddr.pop_front() {
            if let Err(back) = ddr.try_push(r) {
                self.pending_ddr.push_front(back);
                break;
            }
        }
        self.hbm_demand.drain(hbm);
        self.ddr_demand.drain(ddr);

        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        hbm.tick(&mut scratch);
        for c in scratch.drain(..) {
            if c.token.0 & TOK_MASK == TOK_WB {
                let idx = ((c.token.0 >> 8) & 0xffff) as usize;
                self.on_wb_block(idx, c.token.0 & 0xff, now);
            } else if let Some((req, arrived)) = self.hbm_demand.complete(c.token) {
                self.stats
                    .dc_access_time
                    .record(now.saturating_sub(arrived));
                events.responses.push(MemResp {
                    token: req.token,
                    addr: req.addr,
                    kind: req.kind,
                    core: req.core,
                });
            }
        }
        ddr.tick(&mut scratch);
        for c in scratch.drain(..) {
            if c.token.0 & TOK_MASK == TOK_FILL {
                let idx = ((c.token.0 >> 8) & 0xffff) as usize;
                self.on_fill_block(idx, c.token.0 & 0xff, now);
            } else if let Some((req, arrived)) = self.ddr_demand.complete(c.token) {
                self.stats
                    .dc_access_time
                    .record(now.saturating_sub(arrived));
                events.responses.push(MemResp {
                    token: req.token,
                    addr: req.addr,
                    kind: req.kind,
                    core: req.core,
                });
            }
        }
        self.scratch = scratch;
    }

    fn next_activity_at(&self, now: Cycle) -> Option<Cycle> {
        // Owed flushes/shootdowns, queued traffic and live fills all
        // make per-cycle progress; pure demand in flight completes on
        // device edges the system watches.
        if !self.pending_flush.is_empty()
            || !self.pending_shootdown.is_empty()
            || !self.pending_hbm.is_empty()
            || !self.pending_ddr.is_empty()
            || self.fills.iter().any(Option::is_some)
            || self.hbm_demand.has_queued()
            || self.ddr_demand.has_queued()
        {
            Some(now + 1)
        } else {
            None
        }
    }

    fn tlb_inserted(&mut self, core: CoreId, vpn: Vpn) {
        if let Some(pte) = self.page_table.get(vpn) {
            if let FrameKind::Cache(cfn) = pte.frame {
                self.slots[cfn.raw() as usize].tlb |= 1 << (core as u64 & 63);
            }
        }
    }

    fn tlb_departed(&mut self, core: CoreId, vpn: Vpn) {
        if let Some(pte) = self.page_table.get(vpn) {
            if let FrameKind::Cache(cfn) = pte.frame {
                self.slots[cfn.raw() as usize].tlb &= !(1 << (core as u64 & 63));
            }
        }
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::NoFlush;
    use nomad_dram::DramConfig;
    use nomad_types::SubBlockIdx;

    fn cfg_every_access(capacity: u64) -> BansheeConfig {
        BansheeConfig {
            sample_rate: 1,
            ..BansheeConfig::paper(capacity)
        }
    }

    fn run(s: &mut Banshee, hbm: &mut Dram, ddr: &mut Dram, from: Cycle, cycles: Cycle) {
        let mut ev = SchemeEvents::default();
        for now in from..from + cycles {
            s.tick(now, hbm, ddr, &mut NoFlush, &mut ev);
            ev.clear();
        }
    }

    fn walk_read(s: &mut Banshee, vpn: u64, now: Cycle) -> FrameKind {
        match s.walk(0, Vpn(vpn), SubBlockIdx(0), AccessKind::Read, now) {
            WalkOutcome::Ready { entry } => entry.frame,
            _ => panic!("banshee never blocks"),
        }
    }

    #[test]
    fn sampled_miss_admits_and_fills() {
        let mut s = Banshee::new(cfg_every_access(1 << 20));
        let mut hbm = Dram::new(DramConfig::hbm());
        let mut ddr = Dram::new(DramConfig::ddr4_2ch());
        // Until the fill lands, the page keeps resolving off-package.
        assert!(matches!(walk_read(&mut s, 7, 0), FrameKind::Phys(_)));
        assert_eq!(s.stats().tag_misses.get(), 1);
        run(&mut s, &mut hbm, &mut ddr, 0, 30_000);
        assert_eq!(s.stats().fills.get(), 1);
        assert_eq!(s.stats().fill_bytes.get(), PAGE_SIZE);
        assert_eq!(ddr.stats().bytes_for(TrafficClass::Fill).read, PAGE_SIZE);
        assert_eq!(hbm.stats().bytes_for(TrafficClass::Fill).written, PAGE_SIZE);
        // The mapping is now TLB-visible.
        assert!(matches!(walk_read(&mut s, 7, 31_000), FrameKind::Cache(_)));
    }

    #[test]
    fn unsampled_accesses_never_admit() {
        let mut s = Banshee::new(BansheeConfig {
            sample_rate: 1_000_000,
            ..BansheeConfig::paper(1 << 20)
        });
        for i in 0..100 {
            walk_read(&mut s, 3, i);
        }
        assert_eq!(s.stats().tag_misses.get(), 0, "no sample, no admission");
    }

    #[test]
    fn admission_gated_on_victim_frequency() {
        // One set, one way, margin 2: B must out-score A by 2 samples.
        let mut s = Banshee::new(BansheeConfig {
            capacity_bytes: PAGE_SIZE,
            ways: 1,
            sample_rate: 1,
            admit_threshold: 2,
            tag_buffer_entries: 1024,
        });
        let mut hbm = Dram::new(DramConfig::hbm());
        let mut ddr = Dram::new(DramConfig::ddr4_2ch());
        walk_read(&mut s, 0, 0); // admit A (empty way), freq 1
        run(&mut s, &mut hbm, &mut ddr, 0, 30_000);
        assert_eq!(s.stats().fills.get(), 1);
        // B's candidate count must reach freq(A) + 2 = 3.
        walk_read(&mut s, 1, 31_000); // cand 1 → bypass
        walk_read(&mut s, 1, 31_001); // cand 2 → bypass
        assert_eq!(s.stats().policy_bypasses.get(), 2);
        assert_eq!(s.stats().tag_misses.get(), 1);
        walk_read(&mut s, 1, 31_002); // cand 3 → admit, evict A
        assert_eq!(s.stats().tag_misses.get(), 2);
        assert_eq!(s.stats().evictions.get(), 1);
        run(&mut s, &mut hbm, &mut ddr, 31_003, 30_000);
        assert!(matches!(walk_read(&mut s, 1, 62_010), FrameKind::Cache(_)));
        assert!(matches!(walk_read(&mut s, 0, 62_011), FrameKind::Phys(_)));
    }

    #[test]
    fn dirty_victim_page_written_back() {
        let mut s = Banshee::new(BansheeConfig {
            capacity_bytes: PAGE_SIZE,
            ways: 1,
            sample_rate: 1,
            admit_threshold: 0,
            tag_buffer_entries: 1024,
        });
        let mut hbm = Dram::new(DramConfig::hbm());
        let mut ddr = Dram::new(DramConfig::ddr4_2ch());
        s.walk(0, Vpn(0), SubBlockIdx(0), AccessKind::Write, 0);
        run(&mut s, &mut hbm, &mut ddr, 0, 30_000);
        // Dirty A in the only way; B displaces it.
        s.walk(0, Vpn(0), SubBlockIdx(0), AccessKind::Write, 30_000);
        walk_read(&mut s, 1, 30_001);
        walk_read(&mut s, 1, 30_002);
        walk_read(&mut s, 1, 30_003);
        run(&mut s, &mut hbm, &mut ddr, 30_004, 60_000);
        assert_eq!(s.stats().writebacks.get(), 1);
        assert_eq!(s.stats().writeback_bytes.get(), PAGE_SIZE);
        assert_eq!(
            ddr.stats().bytes_for(TrafficClass::Writeback).written,
            PAGE_SIZE
        );
        assert_eq!(
            hbm.stats().bytes_for(TrafficClass::Writeback).read,
            PAGE_SIZE
        );
    }

    #[test]
    fn tag_table_writeback_is_lazy_and_batched() {
        let mut s = Banshee::new(BansheeConfig {
            capacity_bytes: 1 << 20,
            ways: 4,
            sample_rate: 1,
            admit_threshold: 1,
            tag_buffer_entries: 2,
        });
        let mut hbm = Dram::new(DramConfig::hbm());
        let mut ddr = Dram::new(DramConfig::ddr4_2ch());
        walk_read(&mut s, 0, 0);
        run(&mut s, &mut hbm, &mut ddr, 0, 30_000);
        assert_eq!(s.stats().fills.get(), 1);
        // One buffered update: nothing flushed yet.
        assert_eq!(ddr.stats().bytes_for(TrafficClass::Metadata).written, 0);
        walk_read(&mut s, 1, 30_000);
        run(&mut s, &mut hbm, &mut ddr, 30_000, 30_000);
        assert_eq!(s.stats().fills.get(), 2);
        // Buffer hit its threshold: both updates flushed as small
        // tag-only writes (8 bytes each).
        assert_eq!(ddr.stats().bytes_for(TrafficClass::Metadata).written, 16);
    }

    #[test]
    fn eviction_of_tlb_resident_page_owes_shootdown() {
        let mut s = Banshee::new(BansheeConfig {
            capacity_bytes: PAGE_SIZE,
            ways: 1,
            sample_rate: 1,
            admit_threshold: 0,
            tag_buffer_entries: 1024,
        });
        let mut hbm = Dram::new(DramConfig::hbm());
        let mut ddr = Dram::new(DramConfig::ddr4_2ch());
        walk_read(&mut s, 0, 0);
        run(&mut s, &mut hbm, &mut ddr, 0, 30_000);
        s.tlb_inserted(0, Vpn(0));
        walk_read(&mut s, 1, 30_000); // evicts the pinned page
        let mut ev = SchemeEvents::default();
        s.tick(30_001, &mut hbm, &mut ddr, &mut NoFlush, &mut ev);
        assert_eq!(ev.shootdowns, vec![Vpn(0)]);
    }

    #[test]
    fn prewarm_fills_empty_ways_only() {
        let mut s = Banshee::new(cfg_every_access(4 * PAGE_SIZE));
        assert_eq!(s.free_frames(), Some(4));
        s.prewarm(0, Vpn(11), false);
        assert_eq!(s.free_frames(), Some(3));
        assert!(matches!(walk_read(&mut s, 11, 0), FrameKind::Cache(_)));
    }
}
