//! The off-package-only baseline memory system (Fig. 9's "Baseline").

use crate::demand::DemandPath;
use crate::scheme::{CacheFlush, DcAccessReq, DcScheme, SchemeEvents, WalkOutcome};
use crate::stats::SchemeStats;
use nomad_cache::{PageTable, TlbEntry};
use nomad_dram::Dram;
use nomad_types::{AccessKind, CoreId, Cycle, MemResp, TrafficClass, Vpn};

/// A conventional memory system: every LLC miss goes to the off-package
/// DDR4; the on-package DRAM is unused. Serves as the lower performance
/// bound all Fig. 9 IPCs are normalized to.
#[derive(Debug)]
pub struct Baseline {
    page_table: PageTable,
    demand: DemandPath,
    stats: SchemeStats,
    queue_limit: usize,
}

impl Baseline {
    /// A baseline system.
    pub fn new() -> Self {
        Baseline {
            page_table: PageTable::new(),
            demand: DemandPath::new(),
            stats: SchemeStats::default(),
            queue_limit: 64,
        }
    }

    /// The scheme's page table (exposed for workload setup such as
    /// marking non-cacheable ranges or creating shared mappings).
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }
}

impl Default for Baseline {
    fn default() -> Self {
        Self::new()
    }
}

impl DcScheme for Baseline {
    fn name(&self) -> &'static str {
        "Baseline"
    }

    fn walk(
        &mut self,
        _core: CoreId,
        vpn: Vpn,
        _sub: nomad_types::SubBlockIdx,
        kind: AccessKind,
        _now: Cycle,
    ) -> WalkOutcome {
        let pte = self.page_table.pte_mut(vpn);
        if kind.is_write() {
            pte.dirty = true;
        }
        WalkOutcome::Ready {
            entry: TlbEntry {
                vpn,
                frame: pte.frame,
                noncacheable: pte.noncacheable,
            },
        }
    }

    fn prewarm(&mut self, _core: CoreId, vpn: Vpn, _dirty: bool) {
        self.page_table.pte_mut(vpn);
    }

    fn can_accept(&self) -> bool {
        self.demand.has_room(self.queue_limit)
    }

    fn access(&mut self, req: DcAccessReq, now: Cycle) {
        debug_assert!(matches!(req.target, nomad_types::MemTarget::OffPackage));
        let class = if req.kind.is_write() {
            self.stats.demand_writes.inc();
            TrafficClass::DemandWrite
        } else {
            self.stats.demand_reads.inc();
            TrafficClass::DemandRead
        };
        self.stats.offpkg_demand.inc();
        self.demand.submit(req, req.addr.base(), class, now);
    }

    fn tick(
        &mut self,
        now: Cycle,
        hbm: &mut Dram,
        ddr: &mut Dram,
        _flush: &mut dyn CacheFlush,
        events: &mut SchemeEvents,
    ) {
        self.demand.drain(ddr);
        let mut done = Vec::new();
        ddr.tick(&mut done);
        hbm.tick(&mut Vec::new());
        for c in done {
            if let Some((req, arrived)) = self.demand.complete(c.token) {
                self.stats
                    .dc_access_time
                    .record(now.saturating_sub(arrived));
                events.responses.push(MemResp {
                    token: req.token,
                    addr: req.addr,
                    kind: req.kind,
                    core: req.core,
                });
            }
        }
    }

    fn next_activity_at(&self, now: Cycle) -> Option<Cycle> {
        // Queued demand needs a tick to drain into the DDR device.
        // Tracked in-flight reads are purely reactive: their
        // completions can only surface on a DDR device edge, and the
        // system bounds skips by the device's own next activity.
        if self.demand.has_queued() {
            Some(now + 1)
        } else {
            None
        }
    }

    fn tlb_inserted(&mut self, _core: CoreId, _vpn: Vpn) {}

    fn tlb_departed(&mut self, _core: CoreId, _vpn: Vpn) {}

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::NoFlush;
    use nomad_cache::FrameKind;
    use nomad_dram::DramConfig;
    use nomad_types::{BlockAddr, MemTarget, ReqId};

    #[test]
    fn walk_allocates_and_never_caches() {
        let mut b = Baseline::new();
        match b.walk(0, Vpn(5), nomad_types::SubBlockIdx(0), AccessKind::Read, 0) {
            WalkOutcome::Ready { entry } => {
                assert!(matches!(entry.frame, FrameKind::Phys(_)));
            }
            _ => panic!("baseline never blocks"),
        }
    }

    #[test]
    fn demand_read_served_by_ddr() {
        let mut b = Baseline::new();
        let mut hbm = Dram::new(DramConfig::hbm());
        let mut ddr = Dram::new(DramConfig::ddr4_2ch());
        let mut ev = SchemeEvents::default();
        b.access(
            DcAccessReq {
                token: ReqId(9),
                addr: BlockAddr(0x100),
                target: MemTarget::OffPackage,
                kind: AccessKind::Read,
                core: 0,
                wants_response: true,
            },
            0,
        );
        for now in 0..500 {
            b.tick(now, &mut hbm, &mut ddr, &mut NoFlush, &mut ev);
        }
        assert_eq!(ev.responses.len(), 1);
        assert_eq!(ev.responses[0].token, ReqId(9));
        assert!(b.stats().dc_access_time.mean() > 50.0, "DDR latency");
        assert_eq!(hbm.stats().total_bytes(), 0, "HBM untouched");
    }
}
