//! Per-scheme statistics: everything Figs. 9–16 need from the
//! DRAM-cache controller's point of view.

use nomad_obs::{Gauge, Registry};
use nomad_types::stats::{gbps, Counter, RunningMean};
use serde::{Deserialize, Serialize};

/// Counters maintained by every [`crate::DcScheme`]; fields that do not
/// apply to a scheme stay zero.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SchemeStats {
    /// Demand reads serviced by the controller.
    pub demand_reads: Counter,
    /// Demand writes serviced by the controller.
    pub demand_writes: Counter,
    /// Demand-read service time in CPU cycles, measured at the DC
    /// controller (the paper's "average DC access time", Fig. 9).
    pub dc_access_time: RunningMean,
    /// DC tag misses (page-granular for OS-managed schemes,
    /// line-granular for TiD).
    pub tag_misses: Counter,
    /// Completed cache fills.
    pub fills: Counter,
    /// Bytes fetched from off-package memory for fills (RMHB numerator).
    pub fill_bytes: Counter,
    /// Dirty evictions written back to off-package memory.
    pub writebacks: Counter,
    /// Bytes written back.
    pub writeback_bytes: Counter,
    /// Tag-management latency per handled tag miss (OS-managed
    /// schemes; Fig. 11/14/15/16).
    pub tag_mgmt_latency: RunningMean,
    /// Accesses whose tag hit but whose data was still in transfer
    /// (NOMAD data misses).
    pub data_misses: Counter,
    /// Data misses serviced directly from a page copy buffer.
    pub buffer_hits: Counter,
    /// Demand accesses that went straight to the DRAM cache (data
    /// hits).
    pub dc_data_hits: Counter,
    /// Demand accesses routed to off-package memory (uncached or
    /// non-cacheable pages; everything, for Baseline).
    pub offpkg_demand: Counter,
    /// Cache frames (or lines) evicted.
    pub evictions: Counter,
    /// Cycles a tag-miss handler spent waiting for the back-end
    /// interface to become idle (PCSHR contention).
    pub interface_wait_cycles: Counter,
    /// Page-copy commands rejected because no PCSHR was free (sampled
    /// per attempt).
    pub pcshr_full_events: Counter,
    /// Tag misses that a selective-caching policy chose not to admit.
    pub policy_bypasses: Counter,
}

impl SchemeStats {
    /// Required miss-handling bandwidth in GB/s over `cycles` CPU
    /// cycles at `clock_ghz`: the page-fetch bytes an (ideal) OS-managed
    /// DC must move, measured exactly like Table I.
    pub fn rmhb_gbps(&self, cycles: u64, clock_ghz: f64) -> f64 {
        gbps(
            self.tag_misses.get() * nomad_types::PAGE_SIZE,
            cycles,
            clock_ghz,
        )
    }

    /// LLC misses (demand reads + writes reaching the controller) per
    /// microsecond — Table I's MPMS.
    pub fn mpms(&self, cycles: u64, clock_ghz: f64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        let us = cycles as f64 / (clock_ghz * 1000.0);
        (self.demand_reads.get() + self.demand_writes.get()) as f64 / us
    }

    /// Fraction of data misses that hit in a page copy buffer (the
    /// paper reports 91.6% for NOMAD).
    pub fn buffer_hit_rate(&self) -> f64 {
        nomad_types::stats::ratio(self.buffer_hits.get(), self.data_misses.get())
    }

    /// Reset every counter.
    pub fn reset(&mut self) {
        *self = SchemeStats::default();
    }
}

/// Sampled gauges mirroring the [`SchemeStats`] counters every scheme
/// maintains. The system assembly registers one of these and refreshes
/// it from [`crate::DcScheme::stats`] at snapshot points, so all four
/// comparison schemes export the same `dcache.*` series without any
/// per-scheme instrumentation.
#[derive(Debug)]
pub struct SchemeStatsObs {
    demand_reads: Gauge,
    demand_writes: Gauge,
    tag_misses: Gauge,
    data_misses: Gauge,
    buffer_hits: Gauge,
    dc_data_hits: Gauge,
    offpkg_demand: Gauge,
    fills: Gauge,
    fill_bytes: Gauge,
    writebacks: Gauge,
    writeback_bytes: Gauge,
    evictions: Gauge,
    interface_wait_cycles: Gauge,
    pcshr_full_events: Gauge,
}

impl SchemeStatsObs {
    /// Register the `dcache.*` gauge set in `reg`.
    pub fn register(reg: &Registry) -> Self {
        let g = |name: &str, unit: &'static str, help: &'static str| {
            reg.gauge(format!("dcache.{name}"), unit, "dcache", help)
        };
        SchemeStatsObs {
            demand_reads: g(
                "demand_reads",
                "requests",
                "Demand reads serviced by the DC controller",
            ),
            demand_writes: g(
                "demand_writes",
                "requests",
                "Demand writes serviced by the DC controller",
            ),
            tag_misses: g("tag_misses", "misses", "DC tag misses handled"),
            data_misses: g(
                "data_misses",
                "misses",
                "Accesses whose tag hit while the page data was still in transfer",
            ),
            buffer_hits: g(
                "buffer_hits",
                "requests",
                "Data misses serviced from a page copy buffer",
            ),
            dc_data_hits: g(
                "dc_data_hits",
                "requests",
                "Demand accesses served from the DRAM cache",
            ),
            offpkg_demand: g(
                "offpkg_demand",
                "requests",
                "Demand accesses routed to off-package memory",
            ),
            fills: g("fills", "pages", "Completed cache fills"),
            fill_bytes: g("fill_bytes", "bytes", "Bytes fetched for fills"),
            writebacks: g(
                "writebacks",
                "pages",
                "Dirty evictions written back off-package",
            ),
            writeback_bytes: g("writeback_bytes", "bytes", "Bytes written back"),
            evictions: g("evictions", "pages", "Cache frames (or lines) evicted"),
            interface_wait_cycles: g(
                "interface_wait_cycles",
                "cycles",
                "Tag-miss handler cycles spent waiting for an idle back-end interface",
            ),
            pcshr_full_events: g(
                "pcshr_full_events",
                "events",
                "Page-copy commands rejected because no PCSHR was free",
            ),
        }
    }

    /// Refresh every gauge from `stats`.
    pub fn sample(&self, stats: &SchemeStats) {
        self.demand_reads.set(stats.demand_reads.get());
        self.demand_writes.set(stats.demand_writes.get());
        self.tag_misses.set(stats.tag_misses.get());
        self.data_misses.set(stats.data_misses.get());
        self.buffer_hits.set(stats.buffer_hits.get());
        self.dc_data_hits.set(stats.dc_data_hits.get());
        self.offpkg_demand.set(stats.offpkg_demand.get());
        self.fills.set(stats.fills.get());
        self.fill_bytes.set(stats.fill_bytes.get());
        self.writebacks.set(stats.writebacks.get());
        self.writeback_bytes.set(stats.writeback_bytes.get());
        self.evictions.set(stats.evictions.get());
        self.interface_wait_cycles
            .set(stats.interface_wait_cycles.get());
        self.pcshr_full_events.set(stats.pcshr_full_events.get());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmhb_math() {
        let mut s = SchemeStats::default();
        s.tag_misses.add(1000); // 1000 pages = 4 MiB
                                // 3200 cycles at 3.2 GHz = 1 µs → 4.096 MB/µs = 4.096 GB/ms… = 4096 GB/s? No:
                                // 4 MiB in 1 µs = 4.194 GB / 1e-6 s / 1e9 = 4194 GB/s — scale sanely:
                                // use 3.2e6 cycles = 1 ms → 4.194e-3 GB / 1e-3 s = 4.19 GB/s.
        let v = s.rmhb_gbps(3_200_000, 3.2);
        assert!((v - 4.096).abs() < 0.01, "{v}");
    }

    #[test]
    fn mpms_math() {
        let mut s = SchemeStats::default();
        s.demand_reads.add(450);
        s.demand_writes.add(50);
        // 3200 cycles at 3.2 GHz = 1 µs → 500 MPMS.
        assert!((s.mpms(3200, 3.2) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn buffer_hit_rate_zero_when_no_data_misses() {
        let s = SchemeStats::default();
        assert_eq!(s.buffer_hit_rate(), 0.0);
    }
}
