//! Demand-traffic router: maps LLC accesses onto DRAM transactions and
//! routes completions back, with backpressure-aware retry.

use crate::scheme::DcAccessReq;
use nomad_dram::{Dram, DramRequest};
use nomad_types::{Cycle, ReqId, TrafficClass};
use std::collections::{HashMap, VecDeque};

/// Routes demand accesses to one DRAM device.
///
/// Reads are tracked until their completion returns so the original
/// LLC request (and its arrival time, for DC-access-time stats) can be
/// recovered; writes are posted.
#[derive(Debug, Default)]
pub struct DemandPath {
    pending: VecDeque<DramRequest>,
    inflight: HashMap<u64, (DcAccessReq, Cycle)>,
    next_token: u64,
    /// Token-space tag ORed into every token, so multiple traffic
    /// sources can share one DRAM device and route completions back.
    tag: u64,
}

/// Token bits reserved for source tags (top byte).
pub const DEMAND_TAG_MASK: u64 = 0xff << 56;

impl DemandPath {
    /// An empty router with tag 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty router whose tokens carry `tag` in the top byte.
    ///
    /// # Panics
    ///
    /// Panics if `tag` uses bits outside the top-byte tag mask or sets
    /// bit 63 (reserved for back-end copy traffic).
    pub fn with_tag(tag: u64) -> Self {
        assert_eq!(tag & !DEMAND_TAG_MASK, 0, "tag outside top byte");
        assert_eq!(tag >> 63, 0, "bit 63 reserved");
        DemandPath {
            tag,
            ..Self::default()
        }
    }

    /// Queue `req` for the device at byte address `addr`, attributing
    /// it to `class`.
    pub fn submit(&mut self, req: DcAccessReq, addr: u64, class: TrafficClass, now: Cycle) {
        let token = self.next_token;
        self.next_token += 1;
        let wants = req.wants_response && !req.kind.is_write();
        if wants {
            self.inflight.insert(token, (req, now));
        }
        self.pending.push_back(DramRequest {
            token: ReqId(self.tag | token),
            addr,
            kind: req.kind,
            class,
            wants_completion: wants,
            probe: nomad_dram::Probe::Data,
        });
    }

    /// Push queued requests into `dram` until its queues fill up.
    pub fn drain(&mut self, dram: &mut Dram) {
        while let Some(req) = self.pending.pop_front() {
            if let Err(back) = dram.try_push(req) {
                self.pending.push_front(back);
                break;
            }
        }
    }

    /// Resolve a completion token back to the original access and its
    /// arrival time. Returns `None` for tokens not owned by this path
    /// (wrong tag or unknown sequence number).
    pub fn complete(&mut self, token: ReqId) -> Option<(DcAccessReq, Cycle)> {
        if token.0 & DEMAND_TAG_MASK != self.tag {
            return None;
        }
        self.inflight.remove(&(token.0 & !DEMAND_TAG_MASK))
    }

    /// Outstanding tracked reads plus queued requests.
    pub fn in_flight(&self) -> usize {
        self.inflight.len() + self.pending.len()
    }

    /// Whether the internal queue is under `limit` entries (admission
    /// control for [`crate::DcScheme::can_accept`]).
    pub fn has_room(&self, limit: usize) -> bool {
        self.pending.len() < limit
    }

    /// Whether requests are still queued awaiting [`drain`](Self::drain)
    /// (the owning scheme must keep ticking while this holds).
    pub fn has_queued(&self) -> bool {
        !self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomad_dram::DramConfig;
    use nomad_types::{AccessKind, BlockAddr, MemTarget};

    fn access(token: u64, kind: AccessKind) -> DcAccessReq {
        DcAccessReq {
            token: ReqId(token),
            addr: BlockAddr(token),
            target: MemTarget::OffPackage,
            kind,
            core: 0,
            wants_response: !kind.is_write(),
        }
    }

    #[test]
    fn read_round_trip() {
        let mut dram = Dram::new(DramConfig::ddr4_2ch());
        let mut path = DemandPath::new();
        path.submit(
            access(7, AccessKind::Read),
            0x1000,
            TrafficClass::DemandRead,
            5,
        );
        let mut done = Vec::new();
        for _ in 0..500 {
            path.drain(&mut dram);
            dram.tick(&mut done);
        }
        assert_eq!(done.len(), 1);
        let (orig, at) = path.complete(done[0].token).expect("tracked");
        assert_eq!(orig.token, ReqId(7));
        assert_eq!(at, 5);
        assert_eq!(path.in_flight(), 0);
    }

    #[test]
    fn writes_are_posted_and_untracked() {
        let mut dram = Dram::new(DramConfig::ddr4_2ch());
        let mut path = DemandPath::new();
        path.submit(
            access(1, AccessKind::Write),
            0,
            TrafficClass::DemandWrite,
            0,
        );
        let mut done = Vec::new();
        for _ in 0..500 {
            path.drain(&mut dram);
            dram.tick(&mut done);
        }
        assert!(done.is_empty());
        assert_eq!(path.in_flight(), 0);
        assert_eq!(
            dram.stats().bytes_for(TrafficClass::DemandWrite).written,
            64
        );
    }

    #[test]
    fn tagged_paths_ignore_foreign_tokens() {
        let mut a = DemandPath::with_tag(1 << 56);
        let mut b = DemandPath::with_tag(2 << 56);
        let mut dram = Dram::new(DramConfig::hbm());
        a.submit(
            access(1, AccessKind::Read),
            0x40,
            TrafficClass::DemandRead,
            0,
        );
        b.submit(
            access(2, AccessKind::Read),
            0x80,
            TrafficClass::DemandRead,
            0,
        );
        let mut done = Vec::new();
        for _ in 0..500 {
            a.drain(&mut dram);
            b.drain(&mut dram);
            dram.tick(&mut done);
        }
        assert_eq!(done.len(), 2);
        let mut a_got = 0;
        let mut b_got = 0;
        for c in done {
            if a.complete(c.token).is_some() {
                a_got += 1;
            } else if b.complete(c.token).is_some() {
                b_got += 1;
            }
        }
        assert_eq!((a_got, b_got), (1, 1));
    }

    #[test]
    fn backpressure_keeps_order() {
        let mut dram = Dram::new(DramConfig::ddr4_2ch());
        let mut path = DemandPath::new();
        // Far more than the 2×32 queue slots.
        for i in 0..200 {
            path.submit(
                access(i, AccessKind::Read),
                i * 64,
                TrafficClass::DemandRead,
                0,
            );
        }
        let mut done = Vec::new();
        let mut completions = 0;
        for _ in 0..200_000 {
            path.drain(&mut dram);
            dram.tick(&mut done);
            completions += done.drain(..).count();
            if completions == 200 {
                break;
            }
        }
        assert_eq!(completions, 200);
    }
}
