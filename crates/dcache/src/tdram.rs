//! TDRAM: a tag-enhanced DRAM cache with **per-row on-die tag storage**
//! (PAPERS.md: "TDRAM: Tag-enhanced DRAM for Efficient Caching").
//!
//! Characteristics reproduced:
//!
//! * data cached in **64-byte blocks**, direct-mapped, with the tags
//!   held **in the DRAM row itself** and compared *on the die* — a hit
//!   is a single HBM access with no separate metadata traffic (contrast
//!   [`crate::Tid`], whose tag reads compete for data bandwidth);
//! * **early miss signalling**: a miss is detected by a *tag-only
//!   probe* ([`Probe::TagOnly`]) that occupies the bus for
//!   `t_tag` beats instead of a full burst, so misses are both detected
//!   early and cheap in bandwidth (the hit/miss latency split is
//!   modeled in `crates/dram` timing, not in SRAM metadata);
//! * **combined tag+data writes**: fills and write-allocates install
//!   data and tag in one burst, so installs cost no extra traffic;
//! * non-blocking misses via MSHRs keyed by cache slot, with a fill
//!   buffer answering same-block reads that race the fill.
//!
//! Being HW-managed, TDRAM leaves the page tables alone: translation is
//! conventional and the DC is invisible to the OS.
#![warn(missing_docs)]

use crate::scheme::{CacheFlush, DcAccessReq, DcScheme, SchemeEvents, WalkOutcome};
use crate::stats::SchemeStats;
use nomad_cache::{PageTable, TlbEntry};
use nomad_dram::{Dram, DramRequest, Probe};
use nomad_types::{AccessKind, CoreId, Cycle, MemResp, ReqId, TrafficClass, Vpn, BLOCK_SIZE};
use std::collections::VecDeque;

/// TDRAM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TdramConfig {
    /// DRAM-cache data capacity in bytes.
    pub capacity_bytes: u64,
    /// Miss status holding registers (slot-keyed).
    pub mshrs: usize,
    /// Latency to service a read from a fill buffer.
    pub buffer_latency: Cycle,
}

impl TdramConfig {
    /// Paper-style TDRAM over a DRAM cache of `capacity_bytes`.
    pub fn paper(capacity_bytes: u64) -> Self {
        TdramConfig {
            capacity_bytes,
            mshrs: 32,
            buffer_latency: 10,
        }
    }
}

/// Token-space tags for routing DRAM completions back to their source.
const TOK_DEMAND: u64 = 1 << 56;
const TOK_PROBE: u64 = 2 << 56;
const TOK_FILL: u64 = 3 << 56;
const TOK_WB: u64 = 4 << 56;
const TOK_MASK: u64 = 0xff << 56;

#[derive(Debug)]
struct TdramMshr {
    /// Cache slot being filled (also the token payload).
    slot: u64,
    /// Physical block id (`paddr / 64`) on its way in.
    block: u64,
    /// Whether the block's data has arrived from off-package memory.
    data_ready: bool,
    /// Whether the tag-only miss probe is still in flight (the fill
    /// read is issued only once the on-die tag check has signalled the
    /// miss).
    probe_outstanding: bool,
    /// Whether a dirty victim's HBM read-out is still in flight.
    wb_outstanding: bool,
    /// Victim block id being written back.
    victim_block: u64,
    /// Whether the line fills dirty (write hit absorbed mid-fill).
    dirty: bool,
    /// Reads waiting for the fill: `(request, arrival)`.
    waiting: Vec<(DcAccessReq, Cycle)>,
}

/// The tag-enhanced DRAM cache.
#[derive(Debug)]
pub struct Tdram {
    cfg: TdramConfig,
    page_table: PageTable,
    /// Per-slot tag: physical block id + 1, 0 when invalid. This is the
    /// *functional* mirror of the on-die tags — their timing cost is a
    /// [`Probe::TagOnly`] DRAM access, not an SRAM lookup.
    tags: Vec<u64>,
    /// Per-slot dirty bits, one bit per slot.
    dirty: Vec<u64>,
    num_slots: u64,
    mshrs: Vec<Option<TdramMshr>>,
    /// Accesses that missed while their slot was busy or all MSHRs
    /// were taken.
    retry: VecDeque<(DcAccessReq, Cycle)>,
    /// Demand reads in flight to HBM: token-seq → (req, arrival).
    demand_inflight: std::collections::HashMap<u64, (DcAccessReq, Cycle)>,
    next_demand_token: u64,
    /// Latency-critical HBM traffic (demand reads/writes, miss probes).
    pending_hbm: VecDeque<DramRequest>,
    /// Background HBM traffic (fill writes, victim read-outs).
    pending_hbm_bg: VecDeque<DramRequest>,
    pending_ddr: VecDeque<DramRequest>,
    /// Responses generated mid-tick (buffer hits, fill arrivals).
    ready_responses: Vec<(Cycle, MemResp)>,
    stats: SchemeStats,
    scratch: Vec<nomad_dram::DramCompletion>,
}

impl Tdram {
    /// Build a TDRAM cache.
    ///
    /// # Panics
    ///
    /// Panics if the capacity holds fewer than one 64-byte slot.
    pub fn new(cfg: TdramConfig) -> Self {
        let num_slots = (cfg.capacity_bytes / BLOCK_SIZE).next_power_of_two();
        assert!(num_slots >= 1, "geometry too small");
        Tdram {
            tags: vec![0; num_slots as usize],
            dirty: vec![0; num_slots.div_ceil(64) as usize],
            num_slots,
            mshrs: (0..cfg.mshrs).map(|_| None).collect(),
            retry: VecDeque::new(),
            demand_inflight: std::collections::HashMap::new(),
            next_demand_token: 0,
            pending_hbm: VecDeque::new(),
            pending_hbm_bg: VecDeque::new(),
            pending_ddr: VecDeque::new(),
            ready_responses: Vec::new(),
            page_table: PageTable::new(),
            stats: SchemeStats::default(),
            cfg,
            scratch: Vec::new(),
        }
    }

    /// The scheme's page table.
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }

    fn slot_of(&self, block: u64) -> u64 {
        block & (self.num_slots - 1)
    }

    fn is_dirty(&self, slot: u64) -> bool {
        self.dirty[(slot / 64) as usize] & (1 << (slot % 64)) != 0
    }

    fn set_dirty(&mut self, slot: u64, d: bool) {
        if d {
            self.dirty[(slot / 64) as usize] |= 1 << (slot % 64);
        } else {
            self.dirty[(slot / 64) as usize] &= !(1 << (slot % 64));
        }
    }

    /// HBM byte address of `slot`'s data.
    fn slot_addr(&self, slot: u64) -> u64 {
        slot * BLOCK_SIZE
    }

    fn find_mshr(&self, slot: u64) -> Option<usize> {
        self.mshrs
            .iter()
            .position(|m| m.as_ref().map(|m| m.slot == slot).unwrap_or(false))
    }

    fn push_demand(&mut self, req: DcAccessReq, slot: u64, now: Cycle) {
        let kind = req.kind;
        let wants = req.wants_response && !kind.is_write();
        let token = if wants {
            let seq = self.next_demand_token;
            self.next_demand_token += 1;
            self.demand_inflight.insert(seq, (req, now));
            TOK_DEMAND | seq
        } else {
            0
        };
        self.pending_hbm.push_back(DramRequest {
            token: ReqId(token),
            addr: self.slot_addr(slot),
            kind,
            class: if kind.is_write() {
                TrafficClass::DemandWrite
            } else {
                TrafficClass::DemandRead
            },
            wants_completion: wants,
            probe: Probe::Data,
        });
    }

    fn handle_access(&mut self, req: DcAccessReq, now: Cycle) -> bool {
        let block = req.addr.base() / BLOCK_SIZE;
        let slot = self.slot_of(block);

        // 1. Slot already being filled? (data-miss path)
        if let Some(idx) = self.find_mshr(slot) {
            let buffer_latency = self.cfg.buffer_latency;
            let m = self.mshrs[idx].as_mut().expect("live mshr");
            if m.block != block {
                // Conflicting block racing an in-flight fill of the
                // same slot: hold it until the slot settles.
                return false;
            }
            self.stats.data_misses.inc();
            if req.kind.is_write() {
                m.dirty = true;
                self.stats.demand_writes.inc();
                return true;
            }
            self.stats.demand_reads.inc();
            if m.data_ready {
                self.stats.buffer_hits.inc();
                self.stats.dc_access_time.record(buffer_latency);
                self.ready_responses.push((
                    now + buffer_latency,
                    MemResp {
                        token: req.token,
                        addr: req.addr,
                        kind: req.kind,
                        core: req.core,
                    },
                ));
            } else {
                m.waiting.push((req, now));
            }
            return true;
        }

        // 2. On-die tag check. A *hit* is a single data access — the
        // tag comparison rides along inside the die, costing neither
        // extra latency nor bus bandwidth.
        if self.tags[slot as usize] == block + 1 {
            self.stats.dc_data_hits.inc();
            if req.kind.is_write() {
                self.stats.demand_writes.inc();
                self.set_dirty(slot, true);
            } else {
                self.stats.demand_reads.inc();
            }
            self.push_demand(req, slot, now);
            return true;
        }

        // 3. Miss: allocate an MSHR or ask the caller to retry.
        let Some(idx) = self.mshrs.iter().position(Option::is_none) else {
            return false;
        };
        if req.kind.is_write() {
            self.stats.demand_writes.inc();
        } else {
            self.stats.demand_reads.inc();
        }
        self.stats.tag_misses.inc();
        let victim = self.tags[slot as usize];
        let victim_dirty = victim != 0 && self.is_dirty(slot);
        if victim != 0 {
            self.stats.evictions.inc();
        }
        self.tags[slot as usize] = 0;
        self.set_dirty(slot, false);

        let mut mshr = TdramMshr {
            slot,
            block,
            data_ready: false,
            probe_outstanding: false,
            wb_outstanding: victim_dirty,
            victim_block: victim.wrapping_sub(1),
            dirty: req.kind.is_write(),
            waiting: Vec::new(),
        };
        if req.kind.is_write() {
            // Write-allocate: the store carries its data, and TDRAM
            // writes data and tag in one combined burst — no probe, no
            // fill read.
            mshr.data_ready = true;
            self.pending_hbm.push_back(DramRequest {
                token: ReqId(TOK_FILL | idx as u64),
                addr: self.slot_addr(slot),
                kind: AccessKind::Write,
                class: TrafficClass::DemandWrite,
                wants_completion: true,
                probe: Probe::Data,
            });
        } else {
            // Read miss: the tag-only probe detects the miss at tag
            // latency (early miss signal); the off-package fetch starts
            // once it returns.
            mshr.probe_outstanding = true;
            mshr.waiting.push((req, now));
            self.pending_hbm.push_back(DramRequest {
                token: ReqId(TOK_PROBE | idx as u64),
                addr: self.slot_addr(slot),
                kind: AccessKind::Read,
                class: TrafficClass::Metadata,
                wants_completion: true,
                probe: Probe::TagOnly,
            });
        }
        if victim_dirty {
            self.stats.writebacks.inc();
            self.stats.writeback_bytes.add(BLOCK_SIZE);
            self.pending_hbm_bg.push_back(DramRequest {
                token: ReqId(TOK_WB | idx as u64),
                addr: self.slot_addr(slot),
                kind: AccessKind::Read,
                class: TrafficClass::Writeback,
                wants_completion: true,
                probe: Probe::Data,
            });
        }
        self.mshrs[idx] = Some(mshr);
        true
    }

    fn on_probe_done(&mut self, idx: usize) {
        let Some(m) = self.mshrs[idx].as_mut() else {
            return;
        };
        if !m.probe_outstanding {
            return;
        }
        m.probe_outstanding = false;
        let block = m.block;
        self.pending_ddr.push_back(DramRequest {
            token: ReqId(TOK_FILL | idx as u64),
            addr: block * BLOCK_SIZE,
            kind: AccessKind::Read,
            class: TrafficClass::Fill,
            wants_completion: true,
            probe: Probe::Data,
        });
    }

    fn on_fill_data(&mut self, idx: usize, from_ddr: bool, now: Cycle) {
        let (slot, waiting) = {
            let Some(m) = self.mshrs[idx].as_mut() else {
                return;
            };
            m.data_ready = true;
            (m.slot, std::mem::take(&mut m.waiting))
        };
        for (req, arrival) in waiting {
            self.stats
                .dc_access_time
                .record(now.saturating_sub(arrival));
            self.ready_responses.push((
                now,
                MemResp {
                    token: req.token,
                    addr: req.addr,
                    kind: req.kind,
                    core: req.core,
                },
            ));
        }
        if from_ddr {
            // Stream the block into the cache: one combined tag+data
            // burst, no separate metadata write.
            self.pending_hbm_bg.push_back(DramRequest {
                token: ReqId(0),
                addr: self.slot_addr(slot),
                kind: AccessKind::Write,
                class: TrafficClass::Fill,
                wants_completion: false,
                probe: Probe::Data,
            });
            self.stats.fill_bytes.add(BLOCK_SIZE);
        }
        self.try_retire(idx);
    }

    fn on_wb_read_done(&mut self, idx: usize) {
        let victim_block;
        {
            let Some(m) = self.mshrs[idx].as_mut() else {
                return;
            };
            m.wb_outstanding = false;
            victim_block = m.victim_block;
        }
        self.pending_ddr.push_back(DramRequest {
            token: ReqId(0),
            addr: victim_block * BLOCK_SIZE,
            kind: AccessKind::Write,
            class: TrafficClass::Writeback,
            wants_completion: false,
            probe: Probe::Data,
        });
        self.try_retire(idx);
    }

    fn try_retire(&mut self, idx: usize) {
        let done = match self.mshrs[idx].as_ref() {
            Some(m) => {
                m.data_ready && !m.probe_outstanding && !m.wb_outstanding && m.waiting.is_empty()
            }
            None => false,
        };
        if done {
            let m = self.mshrs[idx].take().expect("checked");
            self.tags[m.slot as usize] = m.block + 1;
            self.set_dirty(m.slot, m.dirty);
            self.stats.fills.inc();
        }
    }
}

impl DcScheme for Tdram {
    fn name(&self) -> &'static str {
        "TDRAM"
    }

    fn walk(
        &mut self,
        _core: CoreId,
        vpn: Vpn,
        _sub: nomad_types::SubBlockIdx,
        kind: AccessKind,
        _now: Cycle,
    ) -> WalkOutcome {
        // HW-managed: translation is conventional; the DC is invisible
        // to the OS.
        let pte = self.page_table.pte_mut(vpn);
        if kind.is_write() {
            pte.dirty = true;
        }
        WalkOutcome::Ready {
            entry: TlbEntry {
                vpn,
                frame: pte.frame,
                noncacheable: pte.noncacheable,
            },
        }
    }

    fn prewarm(&mut self, _core: CoreId, vpn: Vpn, dirty: bool) {
        let pte = *self.page_table.pte_mut(vpn);
        let nomad_cache::FrameKind::Phys(pfn) = pte.frame else {
            return;
        };
        let first = pfn.base().raw() / BLOCK_SIZE;
        for b in 0..(nomad_types::PAGE_SIZE / BLOCK_SIZE) {
            let block = first + b;
            let slot = self.slot_of(block);
            self.tags[slot as usize] = block + 1;
            self.set_dirty(slot, dirty);
        }
    }

    fn can_accept(&self) -> bool {
        self.retry.len() < 32 && self.pending_hbm.len() < 64 && self.pending_hbm_bg.len() < 256
    }

    fn access(&mut self, req: DcAccessReq, now: Cycle) {
        if !self.handle_access(req, now) {
            self.stats.pcshr_full_events.inc();
            self.retry.push_back((req, now));
        }
    }

    fn tick(
        &mut self,
        now: Cycle,
        hbm: &mut Dram,
        ddr: &mut Dram,
        _flush: &mut dyn CacheFlush,
        events: &mut SchemeEvents,
    ) {
        // Retry accesses stalled on MSHR/slot pressure (in order).
        while let Some((req, arrived)) = self.retry.pop_front() {
            if !self.handle_access(req, arrived) {
                self.retry.push_front((req, arrived));
                break;
            }
        }

        // Push pending traffic: latency-critical demand and probes
        // first, background fill/writeback traffic after.
        while let Some(r) = self.pending_hbm.pop_front() {
            if let Err(back) = hbm.try_push(r) {
                self.pending_hbm.push_front(back);
                break;
            }
        }
        while let Some(r) = self.pending_hbm_bg.pop_front() {
            if let Err(back) = hbm.try_push(r) {
                self.pending_hbm_bg.push_front(back);
                break;
            }
        }
        while let Some(r) = self.pending_ddr.pop_front() {
            if let Err(back) = ddr.try_push(r) {
                self.pending_ddr.push_front(back);
                break;
            }
        }

        // HBM completions: demand reads, miss probes, write-allocate
        // installs and victim read-outs.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        hbm.tick(&mut scratch);
        for c in scratch.drain(..) {
            match c.token.0 & TOK_MASK {
                TOK_DEMAND => {
                    let seq = c.token.0 & !TOK_MASK;
                    if let Some((req, arrived)) = self.demand_inflight.remove(&seq) {
                        self.stats
                            .dc_access_time
                            .record(now.saturating_sub(arrived));
                        events.responses.push(MemResp {
                            token: req.token,
                            addr: req.addr,
                            kind: req.kind,
                            core: req.core,
                        });
                    }
                }
                TOK_PROBE => self.on_probe_done((c.token.0 & !TOK_MASK) as usize),
                TOK_FILL => self.on_fill_data((c.token.0 & !TOK_MASK) as usize, false, now),
                TOK_WB => self.on_wb_read_done((c.token.0 & !TOK_MASK) as usize),
                _ => {}
            }
        }

        // DDR completions: fill reads.
        ddr.tick(&mut scratch);
        for c in scratch.drain(..) {
            if c.token.0 & TOK_MASK == TOK_FILL {
                self.on_fill_data((c.token.0 & !TOK_MASK) as usize, true, now);
            }
        }
        self.scratch = scratch;

        // Release time-delayed responses (fill-buffer hits).
        let mut i = 0;
        while i < self.ready_responses.len() {
            if self.ready_responses[i].0 <= now {
                let (_, resp) = self.ready_responses.swap_remove(i);
                events.responses.push(resp);
            } else {
                i += 1;
            }
        }
    }

    fn next_activity_at(&self, now: Cycle) -> Option<Cycle> {
        // Retries, queued traffic and live MSHRs all make per-cycle
        // progress, so stay dense while any exist. Otherwise only
        // delayed buffer-hit responses are timed; in-flight accesses
        // complete on device edges the system watches separately.
        if !self.retry.is_empty()
            || !self.pending_hbm.is_empty()
            || !self.pending_hbm_bg.is_empty()
            || !self.pending_ddr.is_empty()
            || self.mshrs.iter().any(Option::is_some)
        {
            return Some(now + 1);
        }
        self.ready_responses
            .iter()
            .map(|&(at, _)| at.max(now + 1))
            .min()
    }

    fn tlb_inserted(&mut self, _core: CoreId, _vpn: Vpn) {}

    fn tlb_departed(&mut self, _core: CoreId, _vpn: Vpn) {}

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::NoFlush;
    use nomad_dram::DramConfig;
    use nomad_types::{BlockAddr, MemTarget};

    fn setup() -> (Tdram, Dram, Dram, SchemeEvents) {
        (
            Tdram::new(TdramConfig::paper(1 << 20)), // 1 MiB DC: 16384 slots
            Dram::new(DramConfig::hbm()),
            Dram::new(DramConfig::ddr4_2ch()),
            SchemeEvents::default(),
        )
    }

    fn read_at(token: u64, addr: u64) -> DcAccessReq {
        DcAccessReq {
            token: ReqId(token),
            addr: BlockAddr::containing(addr),
            target: MemTarget::OffPackage,
            kind: AccessKind::Read,
            core: 0,
            wants_response: true,
        }
    }

    fn write_at(token: u64, addr: u64) -> DcAccessReq {
        DcAccessReq {
            token: ReqId(token),
            addr: BlockAddr::containing(addr),
            target: MemTarget::OffPackage,
            kind: AccessKind::Write,
            core: 0,
            wants_response: false,
        }
    }

    fn run(
        s: &mut Tdram,
        hbm: &mut Dram,
        ddr: &mut Dram,
        ev: &mut SchemeEvents,
        from: Cycle,
        cycles: Cycle,
    ) -> Vec<MemResp> {
        let mut out = Vec::new();
        for now in from..from + cycles {
            s.tick(now, hbm, ddr, &mut NoFlush, ev);
            out.append(&mut ev.responses);
            ev.clear();
        }
        out
    }

    #[test]
    fn cold_miss_probes_then_fills_from_ddr() {
        let (mut s, mut hbm, mut ddr, mut ev) = setup();
        s.access(read_at(1, 0x10040), 0);
        let out = run(&mut s, &mut hbm, &mut ddr, &mut ev, 0, 3000);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].token, ReqId(1));
        assert_eq!(s.stats().tag_misses.get(), 1);
        assert_eq!(s.stats().fills.get(), 1);
        assert_eq!(s.stats().fill_bytes.get(), 64);
        // The early-miss probe cost only tag beats, not a full burst.
        assert_eq!(hbm.stats().bytes_for(TrafficClass::Metadata).read, 8);
        // Fill data was written into HBM (tag+data combined burst).
        assert_eq!(hbm.stats().bytes_for(TrafficClass::Fill).written, 64);
        assert_eq!(ddr.stats().bytes_for(TrafficClass::Fill).read, 64);
    }

    #[test]
    fn hit_costs_no_metadata_bandwidth() {
        let (mut s, mut hbm, mut ddr, mut ev) = setup();
        s.access(read_at(1, 0x10000), 0);
        run(&mut s, &mut hbm, &mut ddr, &mut ev, 0, 3000);
        let metadata_before = hbm.stats().bytes_for(TrafficClass::Metadata).total();
        s.access(read_at(2, 0x10000), 3000);
        let out = run(&mut s, &mut hbm, &mut ddr, &mut ev, 3000, 2000);
        assert_eq!(out.len(), 1);
        assert_eq!(s.stats().dc_data_hits.get(), 1);
        // On-die tag check: zero extra metadata traffic for hits.
        let metadata_after = hbm.stats().bytes_for(TrafficClass::Metadata).total();
        assert_eq!(metadata_after, metadata_before, "tags checked on-die");
    }

    #[test]
    fn access_during_fill_waits_or_hits_buffer() {
        let (mut s, mut hbm, mut ddr, mut ev) = setup();
        s.access(read_at(1, 0x10000), 0);
        s.access(read_at(2, 0x10000), 1); // same block, mid-fill
        let out = run(&mut s, &mut hbm, &mut ddr, &mut ev, 0, 5000);
        assert_eq!(out.len(), 2);
        assert_eq!(s.stats().data_misses.get(), 1);
        assert_eq!(s.stats().tag_misses.get(), 1, "no second fill");
    }

    #[test]
    fn write_allocates_without_fill_read() {
        let (mut s, mut hbm, mut ddr, mut ev) = setup();
        s.access(write_at(1, 0x10000), 0);
        run(&mut s, &mut hbm, &mut ddr, &mut ev, 0, 3000);
        assert_eq!(s.stats().tag_misses.get(), 1);
        assert_eq!(s.stats().fills.get(), 1);
        // Combined tag+data write: nothing fetched from off-package.
        assert_eq!(ddr.stats().total_bytes(), 0);
        // A read to the same block now hits.
        s.access(read_at(2, 0x10000), 3000);
        let out = run(&mut s, &mut hbm, &mut ddr, &mut ev, 3000, 2000);
        assert_eq!(out.len(), 1);
        assert_eq!(s.stats().dc_data_hits.get(), 1);
    }

    #[test]
    fn dirty_victim_written_back() {
        let (mut s, mut hbm, mut ddr, mut ev) = setup();
        s.access(write_at(1, 0x10000), 0);
        run(&mut s, &mut hbm, &mut ddr, &mut ev, 0, 3000);
        // Conflicting block: direct-mapped slots repeat every 1 MiB.
        s.access(read_at(2, 0x10000 + (1 << 20)), 3000);
        run(&mut s, &mut hbm, &mut ddr, &mut ev, 3000, 8000);
        assert_eq!(s.stats().writebacks.get(), 1);
        assert_eq!(s.stats().evictions.get(), 1);
        assert_eq!(ddr.stats().bytes_for(TrafficClass::Writeback).written, 64);
    }

    #[test]
    fn mshr_exhaustion_retries() {
        let (mut s, mut hbm, mut ddr, mut ev) = setup();
        // 40 distinct blocks with 32 MSHRs.
        for i in 0..40u64 {
            s.access(read_at(i, i * 64 + 0x4000_0000), 0);
        }
        let out = run(&mut s, &mut hbm, &mut ddr, &mut ev, 0, 60_000);
        assert_eq!(out.len(), 40, "all eventually served");
        assert!(s.stats().pcshr_full_events.get() > 0);
    }

    #[test]
    fn walk_is_conventional() {
        let mut s = Tdram::new(TdramConfig::paper(1 << 20));
        match s.walk(0, Vpn(3), nomad_types::SubBlockIdx(0), AccessKind::Read, 0) {
            WalkOutcome::Ready { entry } => {
                assert!(matches!(entry.frame, nomad_cache::FrameKind::Phys(_)))
            }
            _ => panic!("TDRAM never blocks the core"),
        }
    }
}
