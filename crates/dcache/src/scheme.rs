//! The [`DcScheme`] trait: the contract between the system assembly and
//! a DRAM-cache design.

use crate::stats::SchemeStats;
use nomad_cache::TlbEntry;
use nomad_cpu::OsStallReason;
use nomad_dram::Dram;
use nomad_types::{
    AccessKind, BlockAddr, CoreId, Cycle, MemResp, MemTarget, ReqId, SubBlockIdx, Vpn,
};

/// A demand access arriving at the DRAM-cache controller from the LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DcAccessReq {
    /// LLC-scoped token echoed in the response.
    pub token: ReqId,
    /// Post-translation block address.
    pub addr: BlockAddr,
    /// Address space of `addr` (cache frame vs physical frame).
    pub target: MemTarget,
    /// Read or write.
    pub kind: AccessKind,
    /// Originating core.
    pub core: CoreId,
    /// Whether a response is expected (LLC writebacks are posted).
    pub wants_response: bool,
}

/// Outcome of a page-table walk performed by the scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkOutcome {
    /// Translation available: install `entry` in the TLB and proceed.
    Ready {
        /// Entry to install.
        entry: TlbEntry,
    },
    /// An OS routine took over (DC tag-miss handler or blocking fill):
    /// the core must suspend until the scheme wakes it, then retry the
    /// walk.
    Blocked {
        /// Stall-accounting category.
        reason: OsStallReason,
    },
}

/// Events produced by one scheme tick for the system to apply.
#[derive(Debug, Default)]
pub struct SchemeEvents {
    /// Demand responses for the LLC.
    pub responses: Vec<MemResp>,
    /// Cores whose OS suspension ended this cycle.
    pub wakes: Vec<CoreId>,
    /// VPNs to shoot down from every core's TLBs (forced reclamation
    /// of TLB-resident frames).
    pub shootdowns: Vec<Vpn>,
}

impl SchemeEvents {
    /// Clear all event lists (reuse between ticks).
    pub fn clear(&mut self) {
        self.responses.clear();
        self.wakes.clear();
        self.shootdowns.clear();
    }
}

/// Hierarchy-wide SRAM flush callback, implemented by the system
/// assembly: Algorithm 2's `flush_cache_range` invalidates SRAM lines
/// of a DC frame before it is evicted.
pub trait CacheFlush {
    /// Invalidate all SRAM-cached lines of DC page `page` (a cache
    /// frame number); returns `(lines_removed, dirty_lines)` across all
    /// levels.
    fn flush_dc_page(&mut self, page: u64) -> (usize, usize);
}

/// A no-op flusher for tests and standalone scheme benchmarks.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoFlush;

impl CacheFlush for NoFlush {
    fn flush_dc_page(&mut self, _page: u64) -> (usize, usize) {
        (0, 0)
    }
}

/// A DRAM-cache scheme: owns the page table and all memory-side
/// behaviour below the LLC.
pub trait DcScheme {
    /// Scheme name for reports ("Baseline", "TiD", "TDRAM", "Banshee",
    /// "TDC", "NOMAD", "Ideal").
    fn name(&self) -> &'static str;

    /// Perform the page-table walk for `vpn` on behalf of `core`
    /// (called at walk completion time; the architectural walk latency
    /// has already elapsed). `kind` is the access kind that triggered
    /// the walk and `sub` its sub-block offset within the page —
    /// Algorithm 1 forwards `offset(va)` to the back-end so the
    /// critical sub-block is fetched first.
    fn walk(
        &mut self,
        core: CoreId,
        vpn: Vpn,
        sub: SubBlockIdx,
        kind: AccessKind,
        now: Cycle,
    ) -> WalkOutcome;

    /// Install `vpn` as already-resident before the region of interest
    /// starts (zero-cost checkpoint warming, mirroring the paper's
    /// atomic-CPU fast-forward), optionally with its dirty state.
    /// Implementations allocate OS/tag state without generating
    /// traffic, latency or statistics. The default does nothing.
    fn prewarm(&mut self, core: CoreId, vpn: Vpn, dirty: bool) {
        let _ = (core, vpn, dirty);
    }

    /// Frames still free for checkpoint warming, if the scheme manages
    /// page frames (`None` for frame-less schemes like the baseline).
    fn free_frames(&self) -> Option<u64> {
        None
    }

    /// Whether the controller can take one more demand access.
    fn can_accept(&self) -> bool;

    /// Accept a demand access from the LLC.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called while
    /// [`can_accept`](DcScheme::can_accept) is `false`.
    fn access(&mut self, req: DcAccessReq, now: Cycle);

    /// Advance one CPU cycle: drive both DRAM devices, progress
    /// fills/writebacks/OS routines, emit responses and core wakes.
    fn tick(
        &mut self,
        now: Cycle,
        hbm: &mut Dram,
        ddr: &mut Dram,
        flush: &mut dyn CacheFlush,
        events: &mut SchemeEvents,
    );

    /// Earliest cycle strictly after `now` at which a
    /// [`tick`](DcScheme::tick) could do anything (progress queued
    /// work, release a delayed response, run an OS routine), or `None`
    /// while the scheme is quiescent and only an external `access` /
    /// `walk` / DRAM completion can create work.
    ///
    /// The contract matches [`nomad_types::NextActivity`]: answering
    /// *early* is always safe, answering *late* breaks dense/event
    /// parity. The conservative default — "tick me every cycle" —
    /// makes every scheme correct out of the box; implementations
    /// override it to unlock skipping. DRAM-device activity is the
    /// system's concern: the devices are queried separately, so a
    /// scheme only reports its own queues and timers here.
    fn next_activity_at(&self, now: Cycle) -> Option<Cycle> {
        Some(now + 1)
    }

    /// TLB-residency notification: `vpn`'s translation entered `core`'s
    /// TLB hierarchy (TLB-directory set).
    fn tlb_inserted(&mut self, core: CoreId, vpn: Vpn);

    /// TLB-residency notification: `vpn`'s translation fully left
    /// `core`'s TLB hierarchy (TLB-directory clear).
    fn tlb_departed(&mut self, core: CoreId, vpn: Vpn);

    /// Scheme statistics.
    fn stats(&self) -> &SchemeStats;

    /// Reset statistics (end of warm-up).
    fn reset_stats(&mut self);

    /// Register scheme-specific metrics in `reg` and adopt `ring` as
    /// the span sink for copy/eviction traces. The system registers the
    /// generic [`SchemeStats`] gauges itself (see
    /// [`crate::SchemeStatsObs`]), so only schemes with extra internal
    /// state (e.g. NOMAD's PCSHR back-end) override this. The default
    /// does nothing.
    fn attach_obs(&mut self, reg: &nomad_obs::Registry, ring: &nomad_obs::SpanRing) {
        let _ = (reg, ring);
    }

    /// Refresh any gauges registered by
    /// [`attach_obs`](DcScheme::attach_obs); called at snapshot points.
    /// The default does nothing.
    fn obs_sample(&mut self) {}
}
