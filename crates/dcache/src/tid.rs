//! TiD: the HW-based *tags-in-DRAM* DRAM cache, modeled after Unison
//! Cache's tag management (the paper's representative HW-based design).
//!
//! Characteristics reproduced from §II-A / §IV-A:
//!
//! * data cached in **1 KiB lines**, 4-way set-associative, LRU;
//! * **tags stored in on-package DRAM**: every DC access issues a tag
//!   read, and metadata updates (tag install, dirty bits) issue tag
//!   writes — the extra on-package bandwidth that stretches TiD's
//!   effective DC access time (Fig. 1a, Fig. 10 "metadata");
//! * an **ideal way predictor**: hit data accesses proceed in parallel
//!   with the tag read, so the tag read costs bandwidth but not
//!   latency (§IV-A);
//! * **non-blocking misses** via MSHRs with critical-block-first
//!   fills: the demanded 64-byte block is fetched first and the LLC is
//!   answered as soon as it arrives;
//! * dirty victims are read from on-package DRAM and written back to
//!   off-package memory.
//!
//! Being HW-managed, TiD leaves the page tables alone: SRAM caches and
//! the DC operate on physical addresses.

use crate::scheme::{CacheFlush, DcAccessReq, DcScheme, SchemeEvents, WalkOutcome};
use crate::stats::SchemeStats;
use nomad_cache::{CacheArray, PageTable, TlbEntry};
use nomad_dram::{Dram, DramRequest, Probe};
use nomad_types::{AccessKind, CoreId, Cycle, MemResp, ReqId, TrafficClass, Vpn, BLOCK_SIZE};
use std::collections::{HashMap, VecDeque};

/// TiD configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TidConfig {
    /// DRAM-cache data capacity in bytes.
    pub capacity_bytes: u64,
    /// Cache-line size in bytes (1 KiB in the paper's TiD setup).
    pub line_bytes: u64,
    /// Set associativity (4 ways — the scalability limit the paper
    /// cites for HW-based designs).
    pub assoc: usize,
    /// Miss status holding registers.
    pub mshrs: usize,
    /// Extra tag-store write on every hit (LRU update). Off by
    /// default: Unison-style designs fold the LRU update into the
    /// combined tag/data row access, so hits cost one tag read; misses
    /// and stores still pay explicit metadata writes.
    pub tag_write_on_hit: bool,
    /// Latency to service a read from a fill buffer.
    pub buffer_latency: Cycle,
}

impl TidConfig {
    /// Paper-style TiD over a DRAM cache of `capacity_bytes`.
    pub fn paper(capacity_bytes: u64) -> Self {
        TidConfig {
            capacity_bytes,
            line_bytes: 1024,
            assoc: 4,
            mshrs: 16,
            tag_write_on_hit: false,
            buffer_latency: 10,
        }
    }
}

/// Token-space tags for routing DRAM completions back to their source.
const TOK_DEMAND: u64 = 1 << 56;
const TOK_FILL: u64 = 2 << 56;
const TOK_WB: u64 = 3 << 56;
const TOK_MASK: u64 = 0xff << 56;

#[derive(Debug)]
struct TidMshr {
    /// Physical line identifier (`paddr / line_bytes`).
    line: u64,
    /// Block-arrival bitmask (bit per 64-byte block of the line).
    fetched: u32,
    /// Read-issued bitmask.
    issued: u32,
    /// Critical (demanded-first) block index.
    critical: u8,
    /// Whether the line fills dirty (write-allocated).
    dirty: bool,
    /// Reads waiting for specific blocks: `(request, block, arrival)`.
    waiting: Vec<(DcAccessReq, u8, Cycle)>,
    /// Outstanding victim-writeback reads (from HBM) not yet returned.
    wb_reads_left: u32,
    /// Victim line id being written back (DDR write addresses).
    wb_line: u64,
}

/// The tags-in-DRAM HW-based DRAM cache.
#[derive(Debug)]
pub struct Tid {
    cfg: TidConfig,
    page_table: PageTable,
    tags: CacheArray,
    mshrs: Vec<Option<TidMshr>>,
    /// Accesses that missed while all MSHRs were busy.
    retry: VecDeque<(DcAccessReq, Cycle)>,
    /// Demand reads in flight to HBM: token-seq → (req, arrival).
    demand_inflight: HashMap<u64, (DcAccessReq, Cycle)>,
    next_demand_token: u64,
    /// Latency-critical HBM traffic (demand reads/writes).
    pending_hbm: VecDeque<DramRequest>,
    /// Background HBM traffic (metadata, fill writes, writeback reads).
    pending_hbm_bg: VecDeque<DramRequest>,
    pending_ddr: VecDeque<DramRequest>,
    /// Responses generated mid-tick (buffer hits, fill arrivals).
    ready_responses: Vec<(Cycle, MemResp)>,
    stats: SchemeStats,
    scratch: Vec<nomad_dram::DramCompletion>,
}

impl Tid {
    /// Build a TiD cache.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a multiple of 64 or the geometry
    /// does not produce at least one set.
    pub fn new(cfg: TidConfig) -> Self {
        assert!(cfg.line_bytes.is_multiple_of(BLOCK_SIZE) && cfg.line_bytes >= BLOCK_SIZE);
        let lines = (cfg.capacity_bytes / cfg.line_bytes).max(1) as usize;
        assert!(lines >= cfg.assoc, "geometry too small");
        let sets = (lines / cfg.assoc).next_power_of_two();
        Tid {
            tags: CacheArray::new(sets, cfg.assoc),
            mshrs: (0..cfg.mshrs).map(|_| None).collect(),
            retry: VecDeque::new(),
            demand_inflight: HashMap::new(),
            next_demand_token: 0,
            pending_hbm: VecDeque::new(),
            pending_hbm_bg: VecDeque::new(),
            pending_ddr: VecDeque::new(),
            ready_responses: Vec::new(),
            page_table: PageTable::new(),
            stats: SchemeStats::default(),
            cfg,
            scratch: Vec::new(),
        }
    }

    /// The scheme's page table.
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }

    fn blocks_per_line(&self) -> u32 {
        (self.cfg.line_bytes / BLOCK_SIZE) as u32
    }

    fn full_mask(&self) -> u32 {
        if self.blocks_per_line() == 32 {
            u32::MAX
        } else {
            (1u32 << self.blocks_per_line()) - 1
        }
    }

    /// HBM byte address of `line`'s data slot (hashed direct placement
    /// — sufficient for bandwidth/row modeling).
    fn data_addr(&self, line: u64, block: u8) -> u64 {
        (line * self.cfg.line_bytes) % self.cfg.capacity_bytes + block as u64 * BLOCK_SIZE
    }

    /// HBM byte address of the tag block for `line`'s set (tag region
    /// sits above the data region).
    fn tag_addr(&self, line: u64) -> u64 {
        let set = line & (self.tags.num_sets() as u64 - 1);
        self.cfg.capacity_bytes + set * BLOCK_SIZE
    }

    fn push_metadata_read(&mut self, line: u64) {
        self.pending_hbm_bg.push_back(DramRequest {
            token: ReqId(0),
            addr: self.tag_addr(line),
            kind: AccessKind::Read,
            class: TrafficClass::Metadata,
            wants_completion: false,
            probe: Probe::Data,
        });
    }

    fn push_metadata_write(&mut self, line: u64) {
        self.pending_hbm_bg.push_back(DramRequest {
            token: ReqId(0),
            addr: self.tag_addr(line),
            kind: AccessKind::Write,
            class: TrafficClass::Metadata,
            wants_completion: false,
            probe: Probe::Data,
        });
    }

    fn submit_demand(&mut self, req: DcAccessReq, line: u64, block: u8, now: Cycle) {
        let kind = req.kind;
        let wants = req.wants_response && !kind.is_write();
        let token = if wants {
            let seq = self.next_demand_token;
            self.next_demand_token += 1;
            self.demand_inflight.insert(seq, (req, now));
            TOK_DEMAND | seq
        } else {
            0
        };
        self.pending_hbm.push_back(DramRequest {
            token: ReqId(token),
            addr: self.data_addr(line, block),
            kind,
            class: if kind.is_write() {
                TrafficClass::DemandWrite
            } else {
                TrafficClass::DemandRead
            },
            wants_completion: wants,
            probe: Probe::Data,
        });
    }

    fn handle_access(&mut self, req: DcAccessReq, now: Cycle) -> bool {
        let paddr = req.addr.base();
        let line = paddr / self.cfg.line_bytes;
        let block = ((paddr % self.cfg.line_bytes) / BLOCK_SIZE) as u8;

        // 1. Line already being filled? (data-miss path)
        if let Some(idx) = self.find_mshr(line) {
            let buffer_latency = self.cfg.buffer_latency;
            let m = self.mshrs[idx].as_mut().expect("live mshr");
            self.stats.data_misses.inc();
            if req.kind.is_write() {
                // Absorb into the fill buffer; line installs dirty.
                m.dirty = true;
                m.fetched |= 1 << block;
                self.stats.demand_writes.inc();
                return true;
            }
            self.stats.demand_reads.inc();
            if m.fetched & (1 << block) != 0 {
                // Serviced straight from the fill buffer.
                self.stats.buffer_hits.inc();
                self.stats.dc_access_time.record(buffer_latency);
                self.ready_responses.push((
                    now + buffer_latency,
                    MemResp {
                        token: req.token,
                        addr: req.addr,
                        kind: req.kind,
                        core: req.core,
                    },
                ));
            } else {
                m.waiting.push((req, block, now));
            }
            return true;
        }

        // 2. Tag probe (ideal way predictor: bandwidth, not latency).
        self.push_metadata_read(line);
        let hit = if req.kind.is_write() {
            self.tags.mark_dirty(line)
        } else {
            self.tags.touch(line)
        };
        if hit {
            self.stats.dc_data_hits.inc();
            if req.kind.is_write() {
                self.stats.demand_writes.inc();
                self.push_metadata_write(line); // dirty-bit update
            } else {
                self.stats.demand_reads.inc();
                if self.cfg.tag_write_on_hit {
                    self.push_metadata_write(line);
                }
            }
            self.submit_demand(req, line, block, now);
            return true;
        }

        // 3. Miss: allocate an MSHR or ask the caller to retry.
        let Some(idx) = self.mshrs.iter().position(Option::is_none) else {
            return false;
        };
        if req.kind.is_write() {
            self.stats.demand_writes.inc();
        } else {
            self.stats.demand_reads.inc();
        }
        self.stats.tag_misses.inc();
        let victim = self.tags.insert(line, false);
        self.push_metadata_write(line); // tag install
        let mut mshr = TidMshr {
            line,
            fetched: 0,
            issued: if req.kind.is_write() {
                0
            } else {
                1u32 << block
            },
            critical: block,
            dirty: req.kind.is_write(),
            waiting: Vec::new(),
            wb_reads_left: 0,
            wb_line: 0,
        };
        if req.kind.is_write() {
            // Write-allocate: the store's block is in the buffer now.
            mshr.fetched |= 1 << block;
        } else {
            mshr.waiting.push((req, block, now));
        }
        // Critical-block-first: the demanded block's fetch jumps the
        // fill queue so the LLC answer is not serialized behind other
        // lines' fills (stores carry their own data; nothing to jump).
        if !req.kind.is_write() {
            self.pending_ddr.push_front(DramRequest {
                token: ReqId(TOK_FILL | ((idx as u64) << 8) | block as u64),
                addr: line * self.cfg.line_bytes + block as u64 * BLOCK_SIZE,
                kind: AccessKind::Read,
                class: TrafficClass::Fill,
                wants_completion: true,
                probe: Probe::Data,
            });
        }
        if let Some(v) = victim {
            if v.dirty {
                self.stats.writebacks.inc();
                self.stats.writeback_bytes.add(self.cfg.line_bytes);
                mshr.wb_reads_left = self.blocks_per_line();
                mshr.wb_line = v.key;
                for b in 0..self.blocks_per_line() as u8 {
                    self.pending_hbm_bg.push_back(DramRequest {
                        token: ReqId(TOK_WB | ((idx as u64) << 8) | b as u64),
                        addr: self.data_addr(v.key, b),
                        kind: AccessKind::Read,
                        class: TrafficClass::Writeback,
                        wants_completion: true,
                        probe: Probe::Data,
                    });
                }
            }
        }
        self.mshrs[idx] = Some(mshr);
        true
    }

    fn find_mshr(&self, line: u64) -> Option<usize> {
        self.mshrs
            .iter()
            .position(|m| m.as_ref().map(|m| m.line == line).unwrap_or(false))
    }

    /// Issue outstanding fill reads, critical block first then
    /// sequential.
    fn issue_fill_reads(&mut self) {
        let blocks = self.blocks_per_line();
        for idx in 0..self.mshrs.len() {
            // Bound per-MSHR queue pressure.
            if self.pending_ddr.len() > 64 {
                break;
            }
            let Some(m) = self.mshrs[idx].as_mut() else {
                continue;
            };
            let order = core::iter::once(m.critical as u32)
                .chain((0..blocks).filter(|&b| b != m.critical as u32));
            let mut to_issue = Vec::new();
            for b in order {
                if m.issued & (1 << b) == 0 && m.fetched & (1 << b) == 0 {
                    m.issued |= 1 << b;
                    to_issue.push(b as u8);
                    if to_issue.len() >= 4 {
                        break; // issue throttle per tick
                    }
                }
            }
            let line = m.line;
            for b in to_issue {
                self.pending_ddr.push_back(DramRequest {
                    token: ReqId(TOK_FILL | ((idx as u64) << 8) | b as u64),
                    addr: line * self.cfg.line_bytes + b as u64 * BLOCK_SIZE,
                    kind: AccessKind::Read,
                    class: TrafficClass::Fill,
                    wants_completion: true,
                    probe: Probe::Data,
                });
            }
        }
    }

    fn on_fill_read_done(&mut self, idx: usize, block: u8, now: Cycle) {
        let line;
        {
            let Some(m) = self.mshrs[idx].as_mut() else {
                return;
            };
            m.fetched |= 1 << block;
            line = m.line;
            // Answer waiters for this block.
            let mut i = 0;
            while i < m.waiting.len() {
                if m.waiting[i].1 == block {
                    let (req, _, arrival) = m.waiting.swap_remove(i);
                    self.stats
                        .dc_access_time
                        .record(now.saturating_sub(arrival));
                    self.ready_responses.push((
                        now,
                        MemResp {
                            token: req.token,
                            addr: req.addr,
                            kind: req.kind,
                            core: req.core,
                        },
                    ));
                } else {
                    i += 1;
                }
            }
        }
        // Stream the block into the DRAM cache.
        self.pending_hbm_bg.push_back(DramRequest {
            token: ReqId(0),
            addr: self.data_addr(line, block),
            kind: AccessKind::Write,
            class: TrafficClass::Fill,
            wants_completion: false,
            probe: Probe::Data,
        });
        self.stats.fill_bytes.add(BLOCK_SIZE);
        self.try_retire(idx);
    }

    fn on_wb_read_done(&mut self, idx: usize, block: u8) {
        let wb_line;
        {
            let Some(m) = self.mshrs[idx].as_mut() else {
                return;
            };
            m.wb_reads_left = m.wb_reads_left.saturating_sub(1);
            wb_line = m.wb_line;
        }
        self.pending_ddr.push_back(DramRequest {
            token: ReqId(0),
            addr: wb_line * self.cfg.line_bytes + block as u64 * BLOCK_SIZE,
            kind: AccessKind::Write,
            class: TrafficClass::Writeback,
            wants_completion: false,
            probe: Probe::Data,
        });
        self.try_retire(idx);
    }

    fn try_retire(&mut self, idx: usize) {
        let full = self.full_mask();
        let done = match self.mshrs[idx].as_ref() {
            Some(m) => m.fetched & full == full && m.wb_reads_left == 0 && m.waiting.is_empty(),
            None => false,
        };
        if done {
            let m = self.mshrs[idx].take().expect("checked");
            if m.dirty {
                self.tags.mark_dirty(m.line);
                self.push_metadata_write(m.line);
            }
            self.stats.fills.inc();
        }
    }
}

impl DcScheme for Tid {
    fn name(&self) -> &'static str {
        "TiD"
    }

    fn walk(
        &mut self,
        _core: CoreId,
        vpn: Vpn,
        _sub: nomad_types::SubBlockIdx,
        kind: AccessKind,
        _now: Cycle,
    ) -> WalkOutcome {
        // HW-based: translation is conventional; the DC is invisible to
        // the OS.
        let pte = self.page_table.pte_mut(vpn);
        if kind.is_write() {
            pte.dirty = true;
        }
        WalkOutcome::Ready {
            entry: TlbEntry {
                vpn,
                frame: pte.frame,
                noncacheable: pte.noncacheable,
            },
        }
    }

    fn prewarm(&mut self, _core: CoreId, vpn: Vpn, dirty: bool) {
        let pte = *self.page_table.pte_mut(vpn);
        let nomad_cache::FrameKind::Phys(pfn) = pte.frame else {
            return;
        };
        let lines_per_page = nomad_types::PAGE_SIZE / self.cfg.line_bytes;
        let first = pfn.base().raw() / self.cfg.line_bytes;
        for l in 0..lines_per_page {
            self.tags.insert(first + l, dirty);
        }
    }

    fn can_accept(&self) -> bool {
        self.retry.len() < 32 && self.pending_hbm.len() < 64 && self.pending_hbm_bg.len() < 256
    }

    fn access(&mut self, req: DcAccessReq, now: Cycle) {
        if !self.handle_access(req, now) {
            self.stats.pcshr_full_events.inc();
            self.retry.push_back((req, now));
        }
    }

    fn tick(
        &mut self,
        now: Cycle,
        hbm: &mut Dram,
        ddr: &mut Dram,
        _flush: &mut dyn CacheFlush,
        events: &mut SchemeEvents,
    ) {
        // Retry accesses stalled on MSHR pressure (in order).
        while let Some((req, arrived)) = self.retry.pop_front() {
            if !self.handle_access(req, arrived) {
                self.retry.push_front((req, arrived));
                break;
            }
        }
        self.issue_fill_reads();

        // Push pending traffic: latency-critical demand first,
        // background metadata/fill/writeback after.
        while let Some(r) = self.pending_hbm.pop_front() {
            if let Err(back) = hbm.try_push(r) {
                self.pending_hbm.push_front(back);
                break;
            }
        }
        while let Some(r) = self.pending_hbm_bg.pop_front() {
            if let Err(back) = hbm.try_push(r) {
                self.pending_hbm_bg.push_front(back);
                break;
            }
        }
        while let Some(r) = self.pending_ddr.pop_front() {
            if let Err(back) = ddr.try_push(r) {
                self.pending_ddr.push_front(back);
                break;
            }
        }

        // HBM completions: demand reads and writeback reads.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        hbm.tick(&mut scratch);
        for c in scratch.drain(..) {
            match c.token.0 & TOK_MASK {
                TOK_DEMAND => {
                    let seq = c.token.0 & !TOK_MASK;
                    if let Some((req, arrived)) = self.demand_inflight.remove(&seq) {
                        self.stats
                            .dc_access_time
                            .record(now.saturating_sub(arrived));
                        events.responses.push(MemResp {
                            token: req.token,
                            addr: req.addr,
                            kind: req.kind,
                            core: req.core,
                        });
                    }
                }
                TOK_WB => {
                    let idx = ((c.token.0 >> 8) & 0xffff_ffff_ffff) as usize;
                    let block = (c.token.0 & 0xff) as u8;
                    self.on_wb_read_done(idx, block);
                }
                _ => {}
            }
        }

        // DDR completions: fill reads.
        ddr.tick(&mut scratch);
        for c in scratch.drain(..) {
            if c.token.0 & TOK_MASK == TOK_FILL {
                let idx = ((c.token.0 >> 8) & 0xffff_ffff_ffff) as usize;
                let block = (c.token.0 & 0xff) as u8;
                self.on_fill_read_done(idx, block, now);
            }
        }
        self.scratch = scratch;

        // Release time-delayed responses (fill-buffer hits).
        let mut i = 0;
        while i < self.ready_responses.len() {
            if self.ready_responses[i].0 <= now {
                let (_, resp) = self.ready_responses.swap_remove(i);
                events.responses.push(resp);
            } else {
                i += 1;
            }
        }
    }

    fn next_activity_at(&self, now: Cycle) -> Option<Cycle> {
        // Retries, queued traffic and live MSHRs all make per-cycle
        // progress (fill-read issue is throttled per tick), so stay
        // dense while any exist. Otherwise only delayed buffer-hit
        // responses are timed; in-flight demand reads complete on HBM
        // device edges the system watches separately.
        if !self.retry.is_empty()
            || !self.pending_hbm.is_empty()
            || !self.pending_hbm_bg.is_empty()
            || !self.pending_ddr.is_empty()
            || self.mshrs.iter().any(Option::is_some)
        {
            return Some(now + 1);
        }
        self.ready_responses
            .iter()
            .map(|&(at, _)| at.max(now + 1))
            .min()
    }

    fn tlb_inserted(&mut self, _core: CoreId, _vpn: Vpn) {}

    fn tlb_departed(&mut self, _core: CoreId, _vpn: Vpn) {}

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::NoFlush;
    use nomad_dram::DramConfig;
    use nomad_types::{BlockAddr, MemTarget};

    fn setup() -> (Tid, Dram, Dram, SchemeEvents) {
        (
            Tid::new(TidConfig::paper(1 << 20)), // 1 MiB DC: 1024 lines
            Dram::new(DramConfig::hbm()),
            Dram::new(DramConfig::ddr4_2ch()),
            SchemeEvents::default(),
        )
    }

    fn read_at(token: u64, addr: u64) -> DcAccessReq {
        DcAccessReq {
            token: ReqId(token),
            addr: BlockAddr::containing(addr),
            target: MemTarget::OffPackage,
            kind: AccessKind::Read,
            core: 0,
            wants_response: true,
        }
    }

    fn run(
        tid: &mut Tid,
        hbm: &mut Dram,
        ddr: &mut Dram,
        ev: &mut SchemeEvents,
        from: Cycle,
        cycles: Cycle,
    ) -> Vec<MemResp> {
        let mut out = Vec::new();
        for now in from..from + cycles {
            tid.tick(now, hbm, ddr, &mut NoFlush, ev);
            out.append(&mut ev.responses);
            ev.clear();
        }
        out
    }

    #[test]
    fn cold_miss_fills_from_ddr_critical_first() {
        let (mut tid, mut hbm, mut ddr, mut ev) = setup();
        tid.access(read_at(1, 0x10040), 0); // block 1 of its line
        let out = run(&mut tid, &mut hbm, &mut ddr, &mut ev, 0, 3000);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].token, ReqId(1));
        assert_eq!(tid.stats().tag_misses.get(), 1);
        assert_eq!(tid.stats().fills.get(), 1);
        assert_eq!(tid.stats().fill_bytes.get(), 1024);
        // Fill data was written into HBM.
        assert_eq!(hbm.stats().bytes_for(TrafficClass::Fill).written, 1024);
        // Critical-first: the response must arrive well before the
        // whole 1 KiB line could have been fetched serially.
        assert!(tid.stats().dc_access_time.mean() < 1000.0);
    }

    #[test]
    fn hit_costs_metadata_bandwidth() {
        let (mut tid, mut hbm, mut ddr, mut ev) = setup();
        tid.access(read_at(1, 0x10000), 0);
        run(&mut tid, &mut hbm, &mut ddr, &mut ev, 0, 3000);
        let metadata_before = hbm.stats().bytes_for(TrafficClass::Metadata).total();
        tid.access(read_at(2, 0x10000), 3000);
        let out = run(&mut tid, &mut hbm, &mut ddr, &mut ev, 3000, 2000);
        assert_eq!(out.len(), 1);
        assert_eq!(tid.stats().dc_data_hits.get(), 1);
        let metadata_after = hbm.stats().bytes_for(TrafficClass::Metadata).total();
        assert!(metadata_after > metadata_before, "tag read charged");
    }

    #[test]
    fn access_during_fill_waits_or_hits_buffer() {
        let (mut tid, mut hbm, mut ddr, mut ev) = setup();
        tid.access(read_at(1, 0x10000), 0);
        // Immediately request another block of the same line.
        tid.access(read_at(2, 0x10080), 1);
        let out = run(&mut tid, &mut hbm, &mut ddr, &mut ev, 0, 5000);
        assert_eq!(out.len(), 2);
        assert_eq!(tid.stats().data_misses.get(), 1);
        assert_eq!(tid.stats().tag_misses.get(), 1, "no second fill");
    }

    #[test]
    fn dirty_victim_written_back() {
        let (mut tid, mut hbm, mut ddr, mut ev) = setup();
        // Write-allocate a line, then evict it by filling its set.
        let w = DcAccessReq {
            token: ReqId(1),
            addr: BlockAddr::containing(0x10000),
            target: MemTarget::OffPackage,
            kind: AccessKind::Write,
            core: 0,
            wants_response: false,
        };
        tid.access(w, 0);
        run(&mut tid, &mut hbm, &mut ddr, &mut ev, 0, 4000);
        // 256 sets × 1 KiB lines: conflicting lines stride by 256 KiB.
        for k in 1..=4u64 {
            tid.access(read_at(10 + k, 0x10000 + k * 256 * 1024), 4000);
        }
        run(&mut tid, &mut hbm, &mut ddr, &mut ev, 4000, 20_000);
        assert_eq!(tid.stats().writebacks.get(), 1);
        assert_eq!(ddr.stats().bytes_for(TrafficClass::Writeback).written, 1024);
    }

    #[test]
    fn mshr_exhaustion_retries() {
        let (mut tid, mut hbm, mut ddr, mut ev) = setup();
        // 20 distinct lines with 16 MSHRs.
        for i in 0..20u64 {
            tid.access(read_at(i, i * 1024 + 0x4000_0000), 0);
        }
        let out = run(&mut tid, &mut hbm, &mut ddr, &mut ev, 0, 60_000);
        assert_eq!(out.len(), 20, "all eventually served");
        assert!(tid.stats().pcshr_full_events.get() > 0);
    }

    #[test]
    fn walk_is_conventional() {
        let mut tid = Tid::new(TidConfig::paper(1 << 20));
        match tid.walk(0, Vpn(3), nomad_types::SubBlockIdx(0), AccessKind::Read, 0) {
            WalkOutcome::Ready { entry } => {
                assert!(matches!(entry.frame, nomad_cache::FrameKind::Phys(_)))
            }
            _ => panic!("TiD never blocks the core"),
        }
    }
}
