#!/usr/bin/env python3
"""Summarize results/*.json into the EXPERIMENTS.md tables.

Reads the artifacts the bench harnesses drop under results/ and prints
paper-vs-measured tables in markdown, so EXPERIMENTS.md can be refreshed
after a re-run with different scales.
"""
import json
import math
import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RES = os.path.join(ROOT, "results")


def load(name):
    with open(os.path.join(RES, f"{name}.json")) as f:
        return json.load(f)


def geomean(xs):
    xs = [x for x in xs if x > 0]
    return math.exp(sum(math.log(x) for x in xs) / len(xs)) if xs else 0.0


def headline():
    rows = load("fig09")
    by = {(r["workload"], r["scheme"]): r for r in rows}
    wls = sorted({r["workload"] for r in rows}, key=lambda w: [r["workload"] for r in rows].index(w))
    vs_tdc = geomean(by[(w, "NOMAD")]["ipc"] / by[(w, "TDC")]["ipc"] for w in wls)
    vs_tid = geomean(by[(w, "NOMAD")]["ipc"] / by[(w, "TiD")]["ipc"] for w in wls)
    buf = [r["buffer_hit_rate"] for r in rows if r["scheme"] == "NOMAD" and r["buffer_hit_rate"] > 0]
    lat = [r["tag_mgmt_latency"] for r in rows if r["scheme"] == "NOMAD"]
    print("## headline")
    print(f"NOMAD vs TDC: {100*(vs_tdc-1):+.1f}%  (paper +16.7%)")
    print(f"NOMAD vs TiD: {100*(vs_tid-1):+.1f}%  (paper +25.5%)")
    print(f"buffer-hit rate: {100*sum(buf)/len(buf):.1f}%  (paper 91.6%)")
    print(f"NOMAD tag latency means: {min(lat):.0f}..{max(lat):.0f} cycles")
    f11 = load("fig11")
    by11 = {(r["workload"], r["scheme"]): r for r in f11}
    reds = []
    for w in {r["workload"] for r in f11}:
        t, n = by11[(w, "TDC")]["os_stall_ratio"], by11[(w, "NOMAD")]["os_stall_ratio"]
        if t > 0:
            reds.append(1 - n / t)
    print(f"stall reduction avg: {100*sum(reds)/len(reds):.1f}%  (paper 76.1%)")


def fig09_table():
    rows = load("fig09")
    by = {(r["workload"], r["scheme"]): r for r in rows}
    order = []
    for r in rows:
        if r["workload"] not in order:
            order.append(r["workload"])
    print("\n## fig09 (IPC relative to Baseline)")
    print("| class | wl | TiD | TDC | NOMAD | Ideal |")
    print("|---|---|---|---|---|---|")
    for w in order:
        base = by[(w, "Baseline")]["ipc"]
        cls = by[(w, "Baseline")]["class"]
        cells = " | ".join(f"{by[(w, s)]['ipc']/base:.2f}" for s in ["TiD", "TDC", "NOMAD", "Ideal"])
        print(f"| {cls} | {w} | {cells} |")


def table1():
    rows = load("table1")
    print("\n## table1 (RMHB / MPMS, measured vs paper)")
    print("| wl | RMHB paper | RMHB meas | MPMS paper | MPMS meas |")
    print("|---|---|---|---|---|")
    for r in rows:
        print(
            f"| {r['abbr']} | {r['paper_rmhb']:.1f} | {r['rmhb_gbps']:.1f} "
            f"| {r['paper_mpms']:.1f} | {r['llc_mpms']:.0f} |"
        )


def fig11_table():
    rows = load("fig11")
    by = {(r["workload"], r["scheme"]): r for r in rows}
    order = []
    for r in rows:
        if r["workload"] not in order:
            order.append(r["workload"])
    print("\n## fig11 (stall ratios & tag latency)")
    print("| class | wl | TDC stall | NOMAD stall | reduction | NOMAD taglat |")
    print("|---|---|---|---|---|---|")
    for w in order:
        t = by[(w, "TDC")]
        n = by[(w, "NOMAD")]
        red = 100 * (1 - n["os_stall_ratio"] / t["os_stall_ratio"]) if t["os_stall_ratio"] else 0
        print(
            f"| {t['class']} | {w} | {100*t['os_stall_ratio']:.1f}% "
            f"| {100*n['os_stall_ratio']:.1f}% | {red:.0f}% | {n['tag_mgmt_latency']:.0f} |"
        )


def fig02_table():
    rows = load("fig02")
    print("\n## fig02 (TDC/TiD ratio)")
    for r in rows:
        print(f"  {r['workload']}: {r['tdc_over_tid']:.2f} (RMHB {r['rmhb_gbps']:.1f})")


def fig10_sample():
    rows = load("fig10")
    print("\n## fig10 (cact + pr bandwidth rows, GB/s)")
    for r in rows:
        if r["workload"] in ("cact", "pr"):
            g = r["hbm_gbps"]
            print(
                f"  {r['workload']}/{r['scheme']}: dem_rd {g[0]:.1f} dem_wr {g[1]:.1f} "
                f"meta {g[2]:.1f} fill {g[3]:.1f} wb {g[4]:.1f} rowhit {100*r['hbm_row_hit']:.0f}%"
            )


def sweeps():
    for name in ("fig12", "fig13", "fig14"):
        rows = load(name)
        print(f"\n## {name}")
        for r in rows:
            print(
                f"  {r['workload']} cores={r['cores']} pcshrs={r['pcshrs']}: "
                f"ipc {r['ipc']:.3f} stall {100*r['os_stall_ratio']:.1f}% "
                f"taglat {r['tag_mgmt_latency']:.0f} ddr {r['ddr_gbps']:.1f}"
            )
    rows = load("fig15")
    print("\n## fig15")
    for r in rows:
        print(f"  {r['workload']} ({r['pcshrs']},{r['buffers']}): ipc {r['ipc']:.3f} taglat {r['tag_mgmt_latency']:.0f}")
    rows = load("fig16")
    print("\n## fig16")
    for r in rows:
        org = "central" if r["backends"] == 1 else "distrib"
        print(f"  {org} total={r['total_pcshrs']}: ipc {r['ipc']:.3f} taglat {r['tag_mgmt_latency']:.0f}")


if __name__ == "__main__":
    which = sys.argv[1] if len(sys.argv) > 1 else "all"
    if which in ("all", "headline"):
        headline()
    if which in ("all", "fig09"):
        fig09_table()
    if which in ("all", "table1"):
        table1()
    if which in ("all", "fig11"):
        fig11_table()
    if which in ("all", "fig02"):
        fig02_table()
    if which in ("all", "fig10"):
        fig10_sample()
    if which in ("all", "sweeps"):
        sweeps()
