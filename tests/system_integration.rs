//! Cross-crate integration tests: full systems running real scheme ×
//! workload combinations at smoke scale, checking the paper's
//! first-order behavioural properties rather than absolute numbers.

use nomad::sim::{runner, NomadSpec, SchemeSpec, SystemConfig};
use nomad::trace::WorkloadProfile;

const INSTR: u64 = 25_000;
const WARMUP: u64 = 10_000;

/// Smoke configuration: at 2 cores the default 48 MiB DRAM cache can
/// swallow an entire scaled footprint (zero steady-state misses, which
/// is correct but makes miss-path assertions vacuous); shrink it so
/// footprints exceed capacity like they do at the paper's 8 cores.
fn smoke_cfg(cores: usize) -> SystemConfig {
    let mut cfg = SystemConfig::scaled(cores);
    if cores < 8 {
        cfg.dc_capacity = 16 * 1024 * 1024;
    }
    cfg
}

fn run(spec: &SchemeSpec, w: &WorkloadProfile, cores: usize) -> nomad::sim::RunReport {
    runner::run_one(&smoke_cfg(cores), spec, w, INSTR, WARMUP, 1234)
}

#[test]
fn every_scheme_completes_every_class_representative() {
    // One workload per class × all five schemes, 2 cores.
    for name in ["cact", "libq", "mcf", "pr"] {
        let w = WorkloadProfile::by_name(name).expect("known workload");
        for spec in SchemeSpec::fig9_set() {
            let r = run(&spec, &w, 2);
            assert!(
                r.instructions() >= 2 * INSTR,
                "{name}/{}: committed {}",
                spec.label(),
                r.instructions()
            );
            assert!(r.ipc() > 0.0, "{name}/{}", spec.label());
        }
    }
}

#[test]
fn nomad_reduces_os_stalls_versus_tdc() {
    // The paper's central claim: decoupled tag-data management slashes
    // application stall cycles (76.1% on average in the paper).
    let w = WorkloadProfile::cact();
    let tdc = run(&SchemeSpec::Tdc, &w, 2);
    let nomad = run(&SchemeSpec::Nomad, &w, 2);
    assert!(
        nomad.os_stall_ratio() < 0.7 * tdc.os_stall_ratio(),
        "NOMAD {:.3} vs TDC {:.3}",
        nomad.os_stall_ratio(),
        tdc.os_stall_ratio()
    );
    assert!(
        nomad.ipc() > tdc.ipc(),
        "NOMAD {:.3} vs TDC {:.3}",
        nomad.ipc(),
        tdc.ipc()
    );
}

#[test]
fn ideal_bounds_all_schemes_and_baseline_is_floor_for_excess() {
    // Needs enough cores to put real pressure on the off-package
    // memory — with too few, the baseline never saturates and the
    // class structure does not emerge. Uses the full default
    // configuration (48 MiB DC) so the revisit windows stay resident.
    // Runs a window 4× the smoke default: below ~100k instructions the
    // NOMAD-vs-Baseline margin on cact is inside run-to-run noise
    // (page-copy churn has not amortised yet); at 100k the ordering is
    // stable across seeds.
    let w = WorkloadProfile::cact();
    let cfg = SystemConfig::scaled(6);
    let reports: Vec<_> = SchemeSpec::fig9_set()
        .iter()
        .map(|s| runner::run_one(&cfg, s, &w, 4 * INSTR, WARMUP, 1234))
        .collect();
    let ipc = |name: &str| {
        reports
            .iter()
            .find(|r| r.scheme == name)
            .expect("present")
            .ipc()
    };
    assert!(ipc("Ideal") >= ipc("NOMAD"));
    assert!(ipc("Ideal") >= ipc("TiD"));
    assert!(ipc("NOMAD") > ipc("Baseline"));
}

#[test]
fn osmanaged_schemes_spend_no_metadata_bandwidth_tid_does() {
    use nomad::types::TrafficClass;
    let w = WorkloadProfile::mcf();
    let tid = run(&SchemeSpec::Tid, &w, 2);
    let nomad = run(&SchemeSpec::Nomad, &w, 2);
    assert!(
        tid.hbm_class_gbps(TrafficClass::Metadata) > 0.5,
        "TiD must pay metadata bandwidth: {:.2}",
        tid.hbm_class_gbps(TrafficClass::Metadata)
    );
    assert_eq!(
        nomad.hbm_class_gbps(TrafficClass::Metadata),
        0.0,
        "OS-managed schemes keep tags in PTEs"
    );
}

#[test]
fn nomad_tag_latency_has_400_cycle_floor() {
    let w = WorkloadProfile::bc();
    let r = run(&SchemeSpec::Nomad, &w, 2);
    assert!(
        r.scheme_stats.tag_mgmt_latency.min() >= 400,
        "min {}",
        r.scheme_stats.tag_mgmt_latency.min()
    );
}

#[test]
fn most_nomad_data_misses_hit_page_copy_buffers() {
    // Paper §III-E: 91.6% of data misses hit in page copy buffers
    // thanks to critical-data-first fills. Require a strong majority.
    let w = WorkloadProfile::cact();
    let r = run(&SchemeSpec::Nomad, &w, 2);
    assert!(
        r.scheme_stats.data_misses.get() > 0,
        "must observe data misses"
    );
    assert!(
        r.buffer_hit_rate() > 0.5,
        "buffer hit rate {:.2}",
        r.buffer_hit_rate()
    );
}

#[test]
fn rmhb_orders_workload_classes() {
    // Table I: Excess > Tight > Loose > Few in required miss-handling
    // bandwidth, measured under the ideal configuration.
    let measure = |name: &str| {
        let w = WorkloadProfile::by_name(name).expect("known");
        run(&SchemeSpec::Ideal, &w, 2).rmhb_gbps()
    };
    let cact = measure("cact");
    let libq = measure("libq");
    let mcf = measure("mcf");
    let tc = measure("tc");
    assert!(cact > mcf, "cact {cact:.1} vs mcf {mcf:.1}");
    assert!(libq > mcf, "libq {libq:.1} vs mcf {mcf:.1}");
    assert!(mcf > tc, "mcf {mcf:.1} vs tc {tc:.1}");
}

#[test]
fn distributed_backends_match_centralized() {
    // Fig. 16: centralized and distributed back-ends perform similarly
    // because FIFO allocation spreads copies uniformly.
    let w = WorkloadProfile::libq();
    let central = run(
        &SchemeSpec::NomadWith(NomadSpec {
            pcshrs: 16,
            backends: 1,
            ..NomadSpec::default()
        }),
        &w,
        2,
    );
    let distributed = run(
        &SchemeSpec::NomadWith(NomadSpec {
            pcshrs: 4,
            backends: 4,
            ..NomadSpec::default()
        }),
        &w,
        2,
    );
    let ratio = distributed.ipc() / central.ipc();
    assert!(
        (0.8..1.25).contains(&ratio),
        "distributed/centralized IPC ratio {ratio:.2}"
    );
}

#[test]
fn more_pcshrs_help_bursty_workloads() {
    // Fig. 14: libq (bursty) gains from more PCSHRs.
    let w = WorkloadProfile::libq();
    let small = run(
        &SchemeSpec::NomadWith(NomadSpec {
            pcshrs: 2,
            ..NomadSpec::default()
        }),
        &w,
        2,
    );
    let large = run(
        &SchemeSpec::NomadWith(NomadSpec {
            pcshrs: 32,
            ..NomadSpec::default()
        }),
        &w,
        2,
    );
    // At smoke scale the off-package memory, not the PCSHR count,
    // bounds IPC (exactly the paper's Fig. 12 saturation argument), so
    // assert on the contention metrics instead.
    assert!(
        large.tag_mgmt_latency() < small.tag_mgmt_latency(),
        "tag latency should shrink: {:.0} vs {:.0}",
        large.tag_mgmt_latency(),
        small.tag_mgmt_latency()
    );
    assert!(
        large.scheme_stats.interface_wait_cycles.get()
            < small.scheme_stats.interface_wait_cycles.get(),
        "interface waits should shrink: {} vs {}",
        large.scheme_stats.interface_wait_cycles.get(),
        small.scheme_stats.interface_wait_cycles.get()
    );
}

#[test]
fn deterministic_across_runs() {
    let w = WorkloadProfile::tc();
    let a = run(&SchemeSpec::Nomad, &w, 2);
    let b = run(&SchemeSpec::Nomad, &w, 2);
    assert_eq!(a.cycles, b.cycles, "same seed ⇒ same cycle count");
    assert_eq!(a.instructions(), b.instructions());
}

#[test]
fn writes_mark_pages_dirty_and_cause_writebacks() {
    // cact streams with 35% writes: under a small DRAM cache its
    // evictions include dirty frames, which must be written back. No
    // warm-up so the whole capacity churn is measured.
    // The DRAM cache must be small enough that the FIFO cycles fully
    // within the run — dirty frames only reach the tail after a full
    // revolution.
    let w = WorkloadProfile::cact();
    let mut cfg = smoke_cfg(2);
    cfg.dc_capacity = 1024 * 1024; // 256 frames
    let r = runner::run_one(&cfg, &SchemeSpec::Nomad, &w, 250_000, 0, 1234);
    assert!(
        r.scheme_stats.evictions.get() > cfg.dc_frames(),
        "FIFO must cycle fully: {} evictions",
        r.scheme_stats.evictions.get()
    );
    assert!(
        r.scheme_stats.writebacks.get() > 0,
        "dirty pages must be written back"
    );
}
