//! # NOMAD — Non-blocking OS-managed DRAM cache
//!
//! Facade crate re-exporting the whole NOMAD workspace: a cycle-level
//! heterogeneous-memory simulator reproducing *"NOMAD: Enabling
//! Non-blocking OS-managed DRAM Cache via Tag-Data Decoupling"*
//! (HPCA 2023).
//!
//! See `README.md` for a tour and `examples/` for runnable entry
//! points. The subsystems live in their own crates:
//!
//! * [`types`] — addresses, requests, statistics primitives.
//! * [`dram`] — cycle-level HBM/DDR4 timing model.
//! * [`cache`] — SRAM caches with MSHRs, TLBs, page tables.
//! * [`cpu`] — trace-driven out-of-order core model.
//! * [`trace`] — the Table I synthetic workload generator.
//! * [`dcache`] — the `DcScheme` abstraction plus Baseline/TiD/Ideal.
//! * [`core`] — **the paper's contribution**: NOMAD front-end OS
//!   routines + PCSHR back-end hardware (and the blocking TDC variant).
//! * [`sim`] — full-system assembly and the experiment runner.
//! * [`serve`] — sharded simulation service: TCP job queue, worker
//!   pool, content-addressed result cache.
//! * [`fleet`] — multi-node serve tier: consistent-hash routing,
//!   shared cache reads, work stealing, node failover.
//! * [`obs`] — observability: metric registries, snapshot logs,
//!   Chrome-trace export.
//! * [`faults`] — seeded deterministic fault injection driving the
//!   self-healing sweep stack (DESIGN.md §12).
//!
//! # Example
//!
//! ```no_run
//! use nomad::sim::{runner, SchemeSpec, SystemConfig};
//! use nomad::trace::WorkloadProfile;
//!
//! let cfg = SystemConfig::scaled(4);
//! let report = runner::run_one(
//!     &cfg,
//!     &SchemeSpec::Nomad,
//!     &WorkloadProfile::mcf(),
//!     100_000,
//!     20_000,
//!     42,
//! );
//! println!("IPC {:.3}", report.ipc());
//! ```

pub use nomad_cache as cache;
pub use nomad_core as core;
pub use nomad_cpu as cpu;
pub use nomad_dcache as dcache;
pub use nomad_dram as dram;
pub use nomad_faults as faults;
pub use nomad_fleet as fleet;
pub use nomad_obs as obs;
pub use nomad_serve as serve;
pub use nomad_sim as sim;
pub use nomad_trace as trace;
pub use nomad_types as types;
