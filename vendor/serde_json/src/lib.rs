//! Offline stand-in for [`serde_json`](https://docs.rs/serde_json):
//! emits and parses JSON against the in-tree serde subset's [`Value`]
//! data model (see `vendor/README.md`).
//!
//! Output is deterministic: fields keep declaration order and numbers
//! use Rust's shortest round-trip formatting, so the same value always
//! encodes to the same bytes — the property `nomad-serve`'s
//! content-addressed cache keys rely on.

pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching real serde_json.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------- emit

/// Serialize to a compact JSON string.
///
/// # Errors
///
/// Never fails for the tree data model; the `Result` return mirrors the
/// real serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to a pretty JSON string (two-space indent, like real
/// serde_json).
///
/// # Errors
///
/// Never fails; see [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Reconstruct a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns an error when the tree does not match the target type.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    Ok(T::from_value(value)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            |o, x, d| write_value(o, x, indent, d),
            '[',
            ']',
        ),
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            fields.len(),
            indent,
            depth,
            |o, (k, x), d| {
                write_escaped(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, x, indent, d);
            },
            '{',
            '}',
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<&str>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, I::Item, usize),
    open: char,
    close: char,
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(pad);
            }
        }
        write_item(out, item, depth + 1);
    }
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
    out.push(close);
}

/// JSON has no NaN/infinity; real serde_json refuses them. Emitting
/// `null` keeps the (metrics-only) callers total.
fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let s = x.to_string();
    out.push_str(&s);
    // Mark integral floats as floats, matching serde_json ("1.0").
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parse

/// Deserialize a typed value from a JSON string.
///
/// # Errors
///
/// Returns an error on malformed JSON or a type mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(T::from_value(&v)?)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            got => Err(Error::new(format!(
                "expected `{}` at offset {}, found {:?}",
                b as char,
                self.pos.saturating_sub(1),
                got.map(|g| g as char)
            ))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Value::Array(items)),
                got => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found {:?} at offset {}",
                        got.map(|g| g as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Value::Object(fields)),
                got => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found {:?} at offset {}",
                        got.map(|g| g as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{0008}'),
                    Some(b'f') => s.push('\u{000c}'),
                    Some(b'u') => {
                        let hi = self.parse_hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.parse_hex4()?;
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        s.push(
                            char::from_u32(code).ok_or_else(|| Error::new("invalid \\u escape"))?,
                        );
                    }
                    got => {
                        return Err(Error::new(format!(
                            "invalid escape {:?}",
                            got.map(|g| g as char)
                        )))
                    }
                },
                Some(b) if b < 0x80 => s.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at `b`.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self
                .bump()
                .ok_or_else(|| Error::new("truncated \\u escape"))?;
            code = code * 16
                + (c as char)
                    .to_digit(16)
                    .ok_or_else(|| Error::new("invalid hex digit"))?;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits are UTF-8");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(7)),
            ("b".into(), Value::F64(3.25)),
            (
                "c".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("d".into(), Value::Str("line\n\"quote\"".into())),
            ("e".into(), Value::I64(-12)),
        ]);
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn integral_floats_keep_float_syntax() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{unquoted: 1}").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn compact_output_is_stable() {
        let v = Value::Object(vec![("x".into(), Value::U64(1))]);
        assert_eq!(to_string(&v).unwrap(), "{\"x\":1}");
    }
}
