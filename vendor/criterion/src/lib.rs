//! Offline stand-in for [`criterion`](https://docs.rs/criterion) (see
//! `vendor/README.md`).
//!
//! Keeps the macro/struct surface the workspace's micro-benchmarks use
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! `Bencher::iter`, `black_box`) and measures with a simple
//! calibrated-loop timer instead of criterion's statistical machinery:
//! each benchmark is warmed up briefly, then timed over enough
//! iterations to fill ~50 ms, reporting mean ns/iter. When run by
//! `cargo test` (criterion benches receive `--test` or `--bench` flags
//! from the harness) it executes each body once, as a smoke test.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test`, bench executables are invoked with
        // harness flags; treat any argument as "run once, don't time".
        let test_mode = std::env::args().nth(1).is_some();
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Register and immediately run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            test_mode: self.test_mode,
            measured_ns_per_iter: None,
        };
        f(&mut b);
        match b.measured_ns_per_iter {
            Some(ns) if !self.test_mode => {
                println!("{name:<40} {ns:>12.1} ns/iter");
            }
            _ => println!("{name:<40} ok (smoke)"),
        }
        self
    }
}

/// Timing loop handle.
pub struct Bencher {
    test_mode: bool,
    measured_ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Measure `routine`, discarding its output via a black box.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up: run for ~5 ms to stabilise caches and branch state.
        let warm_until = Instant::now() + Duration::from_millis(5);
        let mut warm_iters = 0u64;
        while Instant::now() < warm_until {
            black_box(routine());
            warm_iters += 1;
        }
        // Choose an iteration count filling ~50 ms, then time it.
        let per_iter_est = Duration::from_millis(5).as_nanos() as u64 / warm_iters.max(1);
        let iters = (Duration::from_millis(50).as_nanos() as u64 / per_iter_est.max(1))
            .clamp(10, 10_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = start.elapsed();
        self.measured_ns_per_iter = Some(total.as_nanos() as f64 / iters as f64);
    }
}

/// Group benchmark functions, mirroring the real macro's signature
/// (configuration arms accepted and ignored).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
