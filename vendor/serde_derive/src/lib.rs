//! `#[derive(Serialize, Deserialize)]` for the offline serde subset.
//!
//! Implemented directly on `proc_macro` token trees (the container has
//! no `syn`/`quote`), which bounds what the derives accept:
//!
//! * structs with named fields, tuple structs, unit structs;
//! * enums with unit, tuple and struct variants (externally tagged,
//!   matching real serde's default representation);
//! * no generic parameters and no `#[serde(...)]` attributes — the
//!   workspace uses neither.
//!
//! Field order follows declaration order, so derived serialization is
//! deterministic — a property `nomad-serve`'s content-addressed cache
//! depends on.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

/// Parsed shape of the deriving type.
enum TypeDef {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, generate: fn(&TypeDef) -> String) -> TokenStream {
    match parse(input) {
        Ok(def) => generate(&def)
            .parse()
            .expect("derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error parses"),
    }
}

// ---------------------------------------------------------------- parsing

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Skip `#[...]` attributes and visibility qualifiers.
fn skip_attrs_and_vis(it: &mut Tokens) {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                it.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next(); // pub(crate) / pub(super)
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse(input: TokenStream) -> Result<TypeDef, String> {
    let mut it = input.into_iter().peekable();
    skip_attrs_and_vis(&mut it);
    let keyword = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde stub derive does not support generic type `{name}`"
            ));
        }
    }
    match keyword.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(TypeDef::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(TypeDef::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(TypeDef::UnitStruct { name }),
            None => Ok(TypeDef::UnitStruct { name }),
            other => Err(format!("unexpected token after struct name: {other:?}")),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(TypeDef::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("expected enum body, got {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Parse `name: Type, ...`, returning field names in declaration order.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut it = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it);
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => return Ok(fields),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after `{name}`, got {other:?}")),
        }
        skip_type_until_comma(&mut it);
        fields.push(name);
    }
}

/// Consume a type, stopping after the `,` that ends it (or at the end
/// of the stream). Tracks `<...>` nesting so commas inside generic
/// arguments do not terminate the field.
fn skip_type_until_comma(it: &mut Tokens) {
    let mut angle_depth = 0i32;
    for tt in it.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Number of fields in a tuple-struct/tuple-variant body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut fields = 0usize;
    let mut saw_tokens = false;
    for tt in body {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    fields += 1;
                    saw_tokens = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_tokens = true;
    }
    fields + usize::from(saw_tokens)
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut it = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it);
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => return Ok(variants),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let kind = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                it.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                it.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the separator.
        let mut angle_depth = 0i32;
        while let Some(tt) = it.peek() {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        it.next();
                        break;
                    }
                    _ => {}
                }
            }
            it.next();
        }
        variants.push(Variant { name, kind });
    }
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(def: &TypeDef) -> String {
    match def {
        TypeDef::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{pushes}])\n\
                     }}\n\
                 }}"
            )
        }
        TypeDef::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        TypeDef::TupleStruct { name, arity } => {
            let items: String = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(vec![{items}])\n\
                     }}\n\
                 }}"
            )
        }
        TypeDef::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        TypeDef::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Object(vec![\
                                 ({vname:?}.to_string(), ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binders: Vec<String> =
                                (0..*n).map(|i| format!("f{i}")).collect();
                            let items: String = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![\
                                     ({vname:?}.to_string(), ::serde::Value::Array(vec![{items}]))]),",
                                binders.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binders = fields.join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({f:?}.to_string(), ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binders} }} => ::serde::Value::Object(vec![\
                                     ({vname:?}.to_string(), ::serde::Value::Object(vec![{pushes}]))]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(def: &TypeDef) -> String {
    match def {
        TypeDef::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(v, {f:?})?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         if !matches!(v, ::serde::Value::Object(_)) {{\n\
                             return Err(::serde::Error::type_mismatch(\"object\", v));\n\
                         }}\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        TypeDef::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                     Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        TypeDef::TupleStruct { name, arity } => {
            let inits: String = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Array(items) if items.len() == {arity} =>\n\
                                 Ok({name}({inits})),\n\
                             _ => Err(::serde::Error::custom(concat!(\n\
                                 \"expected array of \", {arity}, \" elements for \", {name:?}))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        TypeDef::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                     match v {{\n\
                         ::serde::Value::Null => Ok({name}),\n\
                         _ => Err(::serde::Error::type_mismatch(\"null\", v)),\n\
                     }}\n\
                 }}\n\
             }}"
        ),
        TypeDef::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vname:?} => Ok({name}::{vname}(\
                                 ::serde::Deserialize::from_value(payload)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: String = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&items[{i}])?,")
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => match payload {{\n\
                                     ::serde::Value::Array(items) if items.len() == {n} =>\n\
                                         Ok({name}::{vname}({inits})),\n\
                                     _ => Err(::serde::Error::custom(\
                                         concat!(\"bad payload for variant \", {vname:?}))),\n\
                                 }},"
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::de_field(payload, {f:?})?,"))
                                .collect();
                            Some(format!(
                                "{vname:?} => Ok({name}::{vname} {{ {inits} }}),"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(::serde::Error::custom(format!(\n\
                                     \"unknown variant `{{other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                                 let (tag, payload) = &fields[0];\n\
                                 let _ = payload;\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     other => Err(::serde::Error::custom(format!(\n\
                                         \"unknown variant `{{other}}` of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(::serde::Error::type_mismatch(\"enum\", v)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
