//! Offline stand-in for [`proptest`](https://docs.rs/proptest) (see
//! `vendor/README.md`).
//!
//! Supports the subset the workspace's property tests use: the
//! `proptest!` macro with an optional `#![proptest_config(..)]` header,
//! range and tuple strategies, `proptest::collection::vec`,
//! `proptest::bool::ANY`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! file: each test runs its body over `cases` deterministically seeded
//! pseudo-random inputs (seed derived from the test name, so failures
//! reproduce across runs). `prop_assert*` map to plain panics.

use std::ops::{Range, RangeInclusive};

/// Per-test configuration (subset of the real `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 48 keeps the simulator's
        // heavier property tests fast while still exploring widely.
        ProptestConfig { cases: 48 }
    }
}

/// Deterministic case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// RNG for one (test, case) pair: seeded from the test name so
    /// every run explores the same inputs.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h ^ ((case as u64) << 32 | case as u64))
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A generator of random values (no shrinking in the stub).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128) - (self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as u128) - (start as u128) + 1;
                (start as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128) - (self.start as i128);
                (self.start as i128 + ((rng.next_u64() as i128) & i128::MAX) % span) as $t
            }
        }
    )*};
}

signed_int_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+),)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
}

/// Length specification for collection strategies. Mirrors real
/// proptest's `SizeRange` so untyped literals like `1..12` infer
/// `usize`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    start: usize,
    /// Exclusive upper bound.
    end: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            start: *r.start(),
            end: r.end().saturating_add(1),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec`s with a random in-range length.
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    /// A `Vec` strategy drawing the length from `len` and each element
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.len;
            assert!(len.start < len.end, "empty size range");
            let span = (len.end - len.start) as u64;
            let n = len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform boolean strategy.
    pub struct Any;

    /// Uniform boolean (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The usual glob import target.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Define property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng =
                    $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg =
                    $crate::Strategy::generate(&($strat), &mut __proptest_rng);)*
                $body
            }
        }
    )*};
}

/// `assert!` that reports through the proptest spelling.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `assert_eq!` that reports through the proptest spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// `assert_ne!` that reports through the proptest spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_test_name() {
        let mut a = crate::TestRng::for_case("t", 0);
        let mut b = crate::TestRng::for_case("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("t", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vecs_respect_bounds(
            x in 3u64..9,
            v in crate::collection::vec((0u8..4, crate::bool::ANY), 1..10),
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 10);
            for (b, _flag) in v {
                prop_assert!(b < 4);
            }
        }
    }
}
