//! Offline stand-in for [`serde`](https://docs.rs/serde).
//!
//! This workspace pins its external dependencies to in-tree subsets
//! (see `vendor/README.md`) so `cargo build && cargo test` work with no
//! network access. The subset keeps the *spelling* of the serde API the
//! repository actually uses — `#[derive(Serialize, Deserialize)]` plus
//! `serde_json::{to_string, to_string_pretty, from_str}` — while
//! replacing serde's visitor-based data model with a much smaller
//! tree-valued one: serializing produces a [`Value`], deserializing
//! consumes one.
//!
//! Determinism matters more than speed here: struct fields serialize in
//! declaration order and maps preserve insertion order, so a value's
//! JSON encoding is stable across runs. `nomad-serve` relies on that
//! stability for its content-addressed result cache.

use std::fmt;

/// A JSON-shaped value tree: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered fields.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object by name.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Human-readable name of the value's type (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// A required field was absent.
    pub fn missing_field(name: &str) -> Self {
        Error(format!("missing field `{name}`"))
    }

    /// A value had the wrong type.
    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        Error(format!("expected {expected}, found {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be represented as a [`Value`] tree.
pub trait Serialize {
    /// Convert to the data-model tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct from the data-model tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserialize one named field of an object.
///
/// Absent fields deserialize from [`Value::Null`], so `Option<T>`
/// fields default to `None` (matching serde's behaviour for missing
/// optional fields) while required fields report a helpful error.
pub fn de_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get_field(name) {
        Some(f) => T::from_value(f).map_err(|e| Error(format!("field `{name}`: {e}"))),
        None => T::from_value(&Value::Null).map_err(|_| Error::missing_field(name)),
    }
}

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    _ => return Err(Error::type_mismatch("unsigned integer", v)),
                };
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| Error::custom(format!("{n} overflows i64")))?,
                    _ => return Err(Error::type_mismatch("integer", v)),
                };
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::F64(x) => Ok(x as $t),
                    Value::U64(n) => Ok(n as $t),
                    Value::I64(n) => Ok(n as $t),
                    _ => Err(Error::type_mismatch("number", v)),
                }
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::type_mismatch("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::type_mismatch("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::type_mismatch("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of {N} elements, found {got}")))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Compatibility alias: real serde exposes the derives under `serde::de`
/// and `serde::ser` too.
pub mod ser {
    pub use crate::{Error, Serialize};
}

/// See [`ser`].
pub mod de {
    pub use crate::{Deserialize, Error};
}
