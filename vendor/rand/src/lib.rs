//! Offline stand-in for [`rand` 0.8](https://docs.rs/rand/0.8) (see
//! `vendor/README.md`).
//!
//! Implements the subset the workspace uses — `rngs::SmallRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` —
//! with the same core generator family as the real crate on 64-bit
//! targets (xoshiro256++ seeded through SplitMix64). Streams are *not*
//! bit-identical to the real crate (range sampling uses simple modulo
//! reduction rather than Lemire rejection), but they are deterministic
//! per seed, which is what the simulator's reproducibility — and
//! `nomad-serve`'s result cache — require.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64-expanded, like
    /// the real crate's default `seed_from_u64`).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        sample_unit_f64(self.next_u64()) < p
    }

    /// Sample a value of a [`StandardDist`]-distributed type.
    fn gen<T: StandardDist>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// `[0, 1)` from the top 53 bits (the standard f64 construction).
fn sample_unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::gen`].
pub trait StandardDist: Sized {
    /// Draw one sample.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardDist for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        sample_unit_f64(rng.next_u64())
    }
}

impl StandardDist for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardDist for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128) - (self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u128) - (start as u128) + 1;
                (start as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = sample_unit_f64(rng.next_u64());
        self.start + unit * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind the real crate's `SmallRng`
    /// on 64-bit platforms. Fast, small state, not cryptographic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for seed_from_u64.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self::from_state(s)
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias so code written against the real crate's `StdRng` still
    /// compiles; the stub backs both names with xoshiro256++.
    pub type StdRng = SmallRng;
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let same: usize = (0..100)
            .filter(|_| a.gen_range(0u64..1_000_000) == c.gen_range(0u64..1_000_000))
            .count();
        assert!(same < 5, "different seeds should diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..=3);
            assert!(y <= 3);
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn full_u64_range_is_accepted() {
        let mut rng = SmallRng::seed_from_u64(3);
        let x = rng.gen_range(0u64..u64::MAX);
        assert!(x < u64::MAX);
    }
}
