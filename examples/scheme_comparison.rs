//! Compare all five DRAM-cache schemes (Baseline, TiD, TDC, NOMAD,
//! Ideal) on one workload — a single column of the paper's Fig. 9.
//!
//! ```text
//! cargo run --release --example scheme_comparison [workload] [cores]
//! ```
//!
//! `workload` is a Table I abbreviation (default `libq`); `cores`
//! defaults to 4. Try an Excess-class workload (`cact`, `sssp`) to see
//! the blocking scheme collapse, or a Few-class one (`pr`, `tc`) to
//! see the HW-based scheme pay for its metadata.

use nomad::sim::{runner, SchemeSpec, SystemConfig};
use nomad::trace::WorkloadProfile;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("libq");
    let cores: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);

    let Some(workload) = WorkloadProfile::by_name(name) else {
        eprintln!("unknown workload '{name}'; one of:");
        for w in WorkloadProfile::all() {
            eprintln!("  {:<6} {} ({:?})", w.name, w.full_name, w.class);
        }
        std::process::exit(1);
    };

    let cfg = SystemConfig::scaled(cores);
    println!(
        "'{}' ({} class, paper RMHB {:.1} GB/s) on {} cores:\n",
        workload.full_name, workload.class, workload.rmhb_gbps, cores
    );
    println!(
        "{:<9} {:>7} {:>9} {:>10} {:>10} {:>9} {:>9}",
        "scheme", "IPC", "vs base", "DC access", "OS stall", "tag lat", "DDR GB/s"
    );

    let mut baseline_ipc = None;
    for spec in SchemeSpec::fig9_set() {
        let r = runner::run_one(&cfg, &spec, &workload, 100_000, 80_000, 42);
        let base = *baseline_ipc.get_or_insert(r.ipc());
        println!(
            "{:<9} {:>7.3} {:>8.2}x {:>7.0}cyc {:>9.1}% {:>6.0}cyc {:>9.1}",
            r.scheme,
            r.ipc(),
            r.ipc() / base,
            r.dc_access_time(),
            r.os_stall_ratio() * 100.0,
            r.tag_mgmt_latency(),
            r.ddr_total_gbps(),
        );
    }

    println!("\nReading the rows:");
    println!(" - TiD pays on-package bandwidth for tags (long DC access time);");
    println!(" - TDC has ideal access time but blocks threads during page fills;");
    println!(" - NOMAD decouples the two: tag-only stalls, non-blocking fills.");
}
