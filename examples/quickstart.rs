//! Quickstart: simulate NOMAD on one workload and print the headline
//! metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nomad::sim::{runner, SchemeSpec, SystemConfig};
use nomad::trace::WorkloadProfile;

fn main() {
    // A scaled 4-core system: 64 MiB DRAM cache over single-channel
    // DDR4, private L1/L2 + shared L3 (see SystemConfig::scaled docs).
    let cfg = SystemConfig::scaled(4);

    // mcf: a Loose-class, pointer-chasing SPEC2006 workload.
    let workload = WorkloadProfile::mcf();

    println!(
        "Running NOMAD on '{}' ({} cores, {} MiB DRAM cache)...",
        workload.full_name,
        cfg.cores,
        cfg.dc_capacity >> 20
    );

    let report = runner::run_one(
        &cfg,
        &SchemeSpec::Nomad,
        &workload,
        100_000, // measured instructions per core
        80_000,  // warm-up instructions per core
        42,      // seed
    );

    println!("\n== results ==");
    println!("IPC (per-core average)      {:.3}", report.ipc());
    println!(
        "DC access time              {:.0} cycles",
        report.dc_access_time()
    );
    println!(
        "tag-management latency      {:.0} cycles",
        report.tag_mgmt_latency()
    );
    println!(
        "OS stall ratio              {:.1}%",
        report.os_stall_ratio() * 100.0
    );
    println!(
        "page-copy buffer hit rate   {:.1}% of data misses",
        report.buffer_hit_rate() * 100.0
    );
    println!(
        "on-package bandwidth        {:.1} GB/s (row hits {:.0}%)",
        report.hbm.total_gbps(),
        report.hbm_row_hit_rate() * 100.0
    );
    println!(
        "off-package bandwidth       {:.1} GB/s",
        report.ddr_total_gbps()
    );
    println!("RMHB                        {:.1} GB/s", report.rmhb_gbps());
}
