//! Provisioning study: how many PCSHRs (and page copy buffers) does a
//! NOMAD back-end need for a bursty workload? Reproduces the
//! methodology of the paper's Figs. 14–15 as a user-facing tool.
//!
//! ```text
//! cargo run --release --example pcshr_tuning [workload]
//! ```

use nomad::sim::{runner, NomadSpec, SchemeSpec, SystemConfig};
use nomad::trace::WorkloadProfile;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("libq");
    let workload = WorkloadProfile::by_name(name).unwrap_or_else(|| {
        eprintln!("unknown workload '{name}', using libq");
        WorkloadProfile::libq()
    });
    let cfg = SystemConfig::scaled(4);

    println!(
        "PCSHR provisioning for '{}' ({} class{}):\n",
        workload.full_name,
        workload.class,
        if workload.burst.is_some() {
            ", bursty"
        } else {
            ""
        }
    );
    println!(
        "{:>7} {:>9} {:>7} {:>10} {:>10}",
        "PCSHRs", "buffers", "IPC", "OS stall", "tag lat"
    );

    // Coupled designs: one buffer per PCSHR.
    for pcshrs in [2usize, 4, 8, 16, 32] {
        let spec = SchemeSpec::NomadWith(NomadSpec {
            pcshrs,
            ..NomadSpec::default()
        });
        let r = runner::run_one(&cfg, &spec, &workload, 80_000, 60_000, 7);
        println!(
            "{:>7} {:>9} {:>7.3} {:>9.1}% {:>7.0}cyc",
            pcshrs,
            pcshrs,
            r.ipc(),
            r.os_stall_ratio() * 100.0,
            r.tag_mgmt_latency()
        );
    }

    // Area-optimized: many PCSHRs, few buffers (paper §IV-B.7) — each
    // page copy buffer is 4 KiB of SRAM, a PCSHR only ~45 bytes.
    println!("\narea-optimized (decoupled buffers):");
    for (pcshrs, buffers) in [(32usize, 8usize), (32, 16)] {
        let spec = SchemeSpec::NomadWith(NomadSpec {
            pcshrs,
            buffers: Some(buffers),
            ..NomadSpec::default()
        });
        let r = runner::run_one(&cfg, &spec, &workload, 80_000, 60_000, 7);
        println!(
            "{:>7} {:>9} {:>7.3} {:>9.1}% {:>7.0}cyc",
            pcshrs,
            buffers,
            r.ipc(),
            r.os_stall_ratio() * 100.0,
            r.tag_mgmt_latency()
        );
    }

    println!("\nRule of thumb from the paper: 8 PCSHRs saturate the off-package");
    println!("memory for steady workloads; bursty ones profit from 32 PCSHRs,");
    println!("but the buffer count does not have to scale with them.");
}
