//! Define a custom workload profile and evaluate whether an
//! OS-managed DRAM cache helps it — the adoption path for users whose
//! application is not one of the paper's 15 benchmarks.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use nomad::sim::{runner, SchemeSpec, SystemConfig};
use nomad::trace::{Burst, WorkloadClass, WorkloadProfile};

fn main() {
    // Characterize your application the way Table I does:
    //  - how much page-fetch bandwidth would an ideal page cache need
    //    (RMHB, GB/s)?
    //  - how many LLC misses per microsecond does it generate (MPMS)?
    //  - how big is its footprint, how contiguous are its accesses,
    //    and is it bursty?
    let custom = WorkloadProfile {
        name: "kvstore".into(),
        full_name: "synthetic key-value store".into(),
        class: WorkloadClass::Loose,
        rmhb_gbps: 11.0,
        llc_mpms: 380.0,
        footprint_gb: 3.0,
        spatial_run: 4,  // small objects: ~256 B per lookup
        hot_frac: 0.5,   // half the accesses hit the index (SRAM)
        write_frac: 0.3, // 30% updates
        burst: Some(Burst {
            period_ops: 4000,
            on_scale: 0.4,
            off_scale: 1.6,
        }),
    };

    let cfg = SystemConfig::scaled(4);
    println!(
        "Evaluating '{}' (RMHB {:.0} GB/s, MPMS {:.0}, {} GB footprint)\n",
        custom.full_name, custom.rmhb_gbps, custom.llc_mpms, custom.footprint_gb
    );

    let baseline = runner::run_one(&cfg, &SchemeSpec::Baseline, &custom, 100_000, 80_000, 9);
    let nomad = runner::run_one(&cfg, &SchemeSpec::Nomad, &custom, 100_000, 80_000, 9);
    let tdc = runner::run_one(&cfg, &SchemeSpec::Tdc, &custom, 100_000, 80_000, 9);

    println!("off-package only      IPC {:.3}", baseline.ipc());
    println!(
        "blocking page cache   IPC {:.3}  ({:+.1}% vs off-package, {:.1}% stalled in OS)",
        tdc.ipc(),
        (tdc.ipc() / baseline.ipc() - 1.0) * 100.0,
        tdc.os_stall_ratio() * 100.0
    );
    println!(
        "NOMAD                 IPC {:.3}  ({:+.1}% vs off-package, {:.1}% stalled in OS)",
        nomad.ipc(),
        (nomad.ipc() / baseline.ipc() - 1.0) * 100.0,
        nomad.os_stall_ratio() * 100.0
    );
    println!(
        "\nNOMAD serviced {:.1}% of its in-flight-page accesses from page",
        nomad.buffer_hit_rate() * 100.0
    );
    println!("copy buffers (critical-data-first fills).");
}
