//! Capture a workload trace to disk and replay it deterministically —
//! the record/replay methodology behind reproducible memory-system
//! studies.
//!
//! ```text
//! cargo run --release --example capture_replay [workload]
//! ```

use nomad::sim::{runner, SchemeSpec, SystemConfig};
use nomad::trace::{capture, FileTrace, SyntheticTrace, TraceSource, WorkloadProfile};

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("mcf");
    let workload = WorkloadProfile::by_name(name).unwrap_or_else(|| {
        eprintln!("unknown workload '{name}', using mcf");
        WorkloadProfile::mcf()
    });

    let cfg = SystemConfig::scaled(2);
    let dir = std::env::temp_dir().join("nomad_capture_example");
    std::fs::create_dir_all(&dir)?;

    // 1. Capture one trace per core (different seeds, like rate mode).
    let mut paths = Vec::new();
    for core in 0..cfg.cores {
        let mut gen = SyntheticTrace::with_scale(
            &workload,
            42 + core as u64,
            cfg.pages_per_gb,
            cfg.l3_reach_pages(),
        );
        let path = dir.join(format!("{}-core{}.trace", workload.name, core));
        capture(&path, &workload.name, &mut gen, 60_000)?;
        let bytes = std::fs::metadata(&path)?.len();
        println!(
            "captured {} ({} records, {} KiB)",
            path.display(),
            60_000,
            bytes / 1024
        );
        paths.push(path);
    }

    // 2. Replay through the full system — twice, proving determinism.
    let run = |paths: &[std::path::PathBuf]| -> std::io::Result<nomad::sim::RunReport> {
        let traces: Vec<Box<dyn TraceSource>> = paths
            .iter()
            .map(|p| FileTrace::open(p).map(|t| Box::new(t) as Box<dyn TraceSource>))
            .collect::<std::io::Result<_>>()?;
        let mut sys = nomad::sim::System::new(cfg.clone(), SchemeSpec::Nomad.build(&cfg), traces);
        sys.prewarm();
        sys.warm_up(10_000);
        sys.run(30_000);
        Ok(sys.report(&workload.name))
    };
    let a = run(&paths)?;
    let b = run(&paths)?;
    println!(
        "\nreplay A: IPC {:.4} over {} cycles\nreplay B: IPC {:.4} over {} cycles",
        a.ipc(),
        a.cycles,
        b.ipc(),
        b.cycles
    );
    assert_eq!(a.cycles, b.cycles, "replays are bit-identical");
    println!("replays agree cycle-for-cycle.");

    // 3. Compare against the live generator (same seeds → same trace).
    let live = runner::run_one(&cfg, &SchemeSpec::Nomad, &workload, 30_000, 10_000, 42);
    println!(
        "live generator for reference: IPC {:.4} ({} cycles)",
        live.ipc(),
        live.cycles
    );

    for p in paths {
        std::fs::remove_file(p).ok();
    }
    Ok(())
}
