//! nomad-serve quick start: a CLI client for the simulation service.
//!
//! ```text
//! cargo run --release --example serve_quickstart            # in-process server
//! cargo run --release --example serve_quickstart HOST:PORT  # existing server
//! ```
//!
//! Submits the same small experiment twice (the second submission is a
//! cache hit), prints both reports' headline metrics, and dumps the
//! service statistics.

use nomad::serve::proto::{JobSpec, Response};
use nomad::serve::{serve, Client, ServerConfig};
use nomad::sim::{SchemeSpec, SystemConfig};
use nomad::trace::WorkloadProfile;

fn main() {
    // Connect to the address on the command line, or start an
    // in-process server on an ephemeral port.
    let (addr, local_server) = match std::env::args().nth(1) {
        Some(addr) => (addr, None),
        None => {
            let handle = serve(ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 2,
                ..ServerConfig::default()
            })
            .expect("bind in-process server");
            println!("started in-process server on {}", handle.local_addr());
            (handle.local_addr().to_string(), Some(handle))
        }
    };

    let mut client = Client::connect(&addr).expect("connect");
    client.ping().expect("ping");

    let job = JobSpec {
        cfg: SystemConfig::scaled(2),
        spec: SchemeSpec::Nomad,
        profile: WorkloadProfile::mcf(),
        instructions: 50_000,
        warmup: 10_000,
        seed: 42,
    };
    println!("job content key: {:016x}", job.content_key());

    for round in 1..=2 {
        match client.submit(&job).expect("submit") {
            Response::Report { cached, report } => println!(
                "round {round}: ipc {:.3}, dc access {:.0} cy, cached={cached}",
                report.ipc(),
                report.dc_access_time(),
            ),
            other => panic!("unexpected response: {other:?}"),
        }
    }

    let stats = client.stats().expect("stats");
    println!(
        "stats: {} submitted, {} hit / {} miss, {} cached report(s), \
         queue {}/{}, p50 {} ms, p99 {} ms",
        stats.jobs_submitted,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_entries,
        stats.queue_depth,
        stats.queue_capacity,
        stats.latency_p50_ms,
        stats.latency_p99_ms,
    );

    if let Some(handle) = local_server {
        client.shutdown_server().expect("shutdown");
        handle.join();
    }
}
